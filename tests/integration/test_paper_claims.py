"""Integration tests: the paper's section-by-section claims, end to end.

Each test cites the claim it checks.  These are the acceptance criteria of
the reproduction (shapes and crossovers, per DESIGN.md Section 4).
"""

import numpy as np
import pytest

from repro.core import (
    MMSModel,
    ToleranceZone,
    analyze,
    memory_tolerance,
    network_tolerance,
    solve,
)
from repro.params import paper_defaults


class TestSection5NetworkTolerance:
    def test_lambda_net_saturates_at_the_eq4_rate(self):
        """'the message rate saturates at [1/(2 d_avg S)]' -- the plateau
        sits just below Eq. (4)'s deterministic bound and approaches it as
        n_t grows (finite-population effect)."""
        params = paper_defaults()
        sat = analyze(params).lambda_net_saturation
        plateau_8 = solve(params.with_(p_remote=0.8)).lambda_net
        plateau_20 = solve(
            params.with_(p_remote=0.8, num_threads=20)
        ).lambda_net
        assert plateau_8 <= sat
        assert plateau_8 == pytest.approx(sat, rel=0.15)
        assert plateau_20 == pytest.approx(sat, rel=0.06)
        assert plateau_20 > plateau_8

    def test_saturation_knee_location_r10(self):
        """lambda_net growth collapses past the p_remote ~ 0.3 knee: from
        0.3 to 0.8 the remote share grows 2.7x but the rate barely moves."""
        params = paper_defaults()
        lam_03 = solve(params.with_(p_remote=0.3)).lambda_net
        lam_08 = solve(params.with_(p_remote=0.8)).lambda_net
        assert lam_08 < lam_03 * 1.20
        # while below the knee the growth is ~linear in p_remote
        lam_01 = solve(params.with_(p_remote=0.1)).lambda_net
        lam_02 = solve(params.with_(p_remote=0.2)).lambda_net
        assert lam_02 == pytest.approx(2 * lam_01, rel=0.15)

    def test_sobs_flat_in_p_remote_once_saturated(self):
        """Figure 4(b): for fixed n_t, S_obs is ~constant past saturation."""
        params = paper_defaults(num_threads=8)
        s1 = solve(params.with_(p_remote=0.5)).s_obs
        s2 = solve(params.with_(p_remote=0.8)).s_obs
        assert s2 == pytest.approx(s1, rel=0.15)

    def test_sobs_linear_in_threads_when_saturated(self):
        """Figure 4(b): S_obs grows ~linearly with n_t at high p_remote."""
        params = paper_defaults(p_remote=0.6)
        s = [solve(params.with_(num_threads=n)).s_obs for n in (4, 8, 16)]
        ratio1 = s[1] / s[0]
        ratio2 = s[2] / s[1]
        assert ratio1 == pytest.approx(2.0, rel=0.25)
        assert ratio2 == pytest.approx(2.0, rel=0.25)

    def test_up_near_one_below_critical_p_remote(self):
        """'U_p is close to 100% for p_remote <= [critical]' at n_t = 4+."""
        perf = solve(paper_defaults(num_threads=8, p_remote=0.05))
        assert perf.processor_utilization > 0.85

    def test_up_drops_beyond_critical(self):
        params = paper_defaults(num_threads=4)
        crit = analyze(params).critical_p_remote
        below = solve(params.with_(p_remote=crit * 0.5)).processor_utilization
        above = solve(params.with_(p_remote=min(0.9, crit * 3))).processor_utilization
        assert above < below * 0.85

    def test_most_gains_by_5_to_8_threads(self):
        """'a use of 5 to 8 threads results in most of the performance
        gains' (Figure 4a/4d)."""
        params = paper_defaults(p_remote=0.2)
        u8 = solve(params.with_(num_threads=8)).processor_utilization
        u20 = solve(params.with_(num_threads=20)).processor_utilization
        assert u8 >= 0.85 * u20

    def test_tolerance_zones_at_quoted_points(self):
        """'even at a small n_t (5), tol_network is as high as ~0.86' and it
        degrades once the IN saturates."""
        t5 = network_tolerance(paper_defaults(num_threads=5, p_remote=0.2))
        assert t5.index == pytest.approx(0.88, abs=0.05)
        t_sat = network_tolerance(paper_defaults(num_threads=5, p_remote=0.4))
        assert t_sat.index < t5.index

    def test_sobs_does_not_determine_tolerance(self):
        """Table 2's argument: similar S_obs, different zones."""
        a = paper_defaults(num_threads=8, p_remote=0.2)  # S_obs ~ 53
        perf_a = solve(a)
        # find a 3-thread point with similar S_obs
        from repro.analysis.experiments import _p_remote_for_sobs

        b_base = paper_defaults(num_threads=3)
        pr = _p_remote_for_sobs(b_base, perf_a.s_obs)
        b = b_base.with_(p_remote=pr)
        perf_b = solve(b)
        assert perf_b.s_obs == pytest.approx(perf_a.s_obs, rel=0.05)
        tol_a = network_tolerance(a).index
        tol_b = network_tolerance(b).index
        assert tol_a - tol_b > 0.15

    def test_higher_r_raises_critical_p_remote(self):
        """'Increase in R ... increases the critical value of p_remote'."""
        c10 = analyze(paper_defaults(runlength=10.0)).critical_p_remote
        c20 = analyze(paper_defaults(runlength=20.0)).critical_p_remote
        assert c20 > c10


class TestSection6MemoryTolerance:
    def test_high_up_needs_both_latencies_tolerated(self):
        """'U_p ~ tol_memory x tol_network when R <~ L'."""
        params = paper_defaults()
        tn = network_tolerance(params)
        tm = memory_tolerance(params, actual=tn.actual)
        assert tn.actual.processor_utilization == pytest.approx(
            tn.index * tm.index, rel=0.15
        )

    def test_tolerating_one_latency_is_not_enough(self):
        """A point can tolerate memory latency while the network drags U_p
        down -- low tol marks the bottleneck."""
        params = paper_defaults(p_remote=0.6, num_threads=8)
        tn = network_tolerance(params)
        tm = memory_tolerance(params, actual=tn.actual)
        assert tm.zone is ToleranceZone.TOLERATED
        assert tn.zone is not ToleranceZone.TOLERATED
        assert tn.actual.processor_utilization < 0.6

    def test_doubling_l_multiplies_lobs(self):
        """Table 4: L: 10 -> 20 raises L_obs by over 2.5x at fine grain."""
        fine = paper_defaults(num_threads=8, runlength=5.0)
        l10 = solve(fine).l_obs
        l20 = solve(fine.with_(memory_latency=20.0)).l_obs
        assert l20 / l10 > 2.3

    def test_memory_tolerance_saturates_at_high_r(self):
        """Figure 8: tol_memory ~ 1 for R >= 2L, n_t >= 6."""
        res = memory_tolerance(paper_defaults(runlength=20.0, num_threads=6))
        assert res.index > 0.93

    def test_lobs_rises_with_threads_at_low_p_remote(self):
        """'For a change in n_t from 2 to 7, L_obs increases by 3-folds' at
        low p_remote (most traffic hits the local module)."""
        params = paper_defaults(p_remote=0.2, runlength=5.0)
        l2 = solve(params.with_(num_threads=2)).l_obs
        l7 = solve(params.with_(num_threads=7)).l_obs
        assert l7 / l2 > 2.0


class TestSection7Scaling:
    def test_geometric_beats_uniform_at_scale(self):
        """'a geometric distribution performs significantly better than a
        uniform distribution for larger systems'."""
        gaps = []
        for k in (6, 8, 10):
            geo = network_tolerance(paper_defaults(k=k, num_threads=8))
            uni = network_tolerance(
                paper_defaults(k=k, num_threads=8, pattern="uniform")
            )
            gaps.append(geo.index - uni.index)
        assert gaps[0] > 0.15
        assert gaps[1] > 0.3
        assert gaps[2] > 0.4
        assert gaps == sorted(gaps)  # the gap widens with machine size

    def test_patterns_coincide_at_k2(self):
        """'The performance for the two distributions coincides at k = 2'."""
        geo = solve(paper_defaults(k=2)).processor_utilization
        uni = solve(paper_defaults(k=2, pattern="uniform")).processor_utilization
        assert geo == pytest.approx(uni, rel=1e-9)

    def test_nt_for_tolerance_stable_across_sizes(self):
        """'n_t to tolerate the network latency does not change with the
        size of the system' -- 5-8 threads suffice at every k."""
        for k in (4, 8, 10):
            res = network_tolerance(paper_defaults(k=k, num_threads=8))
            assert res.zone is ToleranceZone.TOLERATED

    def test_uniform_davg_grows_geometric_saturates(self):
        """The mechanism behind the contrast: d_avg growth."""
        from repro.workload import make_pattern

        geo_4 = make_pattern("geometric", 0.5).d_avg(paper_defaults(k=4).arch.torus)
        geo_10 = make_pattern("geometric", 0.5).d_avg(
            paper_defaults(k=10).arch.torus
        )
        uni_4 = make_pattern("uniform").d_avg(paper_defaults(k=4).arch.torus)
        uni_10 = make_pattern("uniform").d_avg(paper_defaults(k=10).arch.torus)
        assert geo_10 - geo_4 < 0.3  # saturates toward 1/(1-p_sw) = 2
        assert uni_10 - uni_4 > 2.0  # grows with the diameter

    def test_linear_throughput_scaling_with_locality(self):
        """Figure 10(a): geometric throughput scales ~linearly in P."""
        t4 = solve(paper_defaults(k=4, num_threads=8)).system_throughput
        t8 = solve(paper_defaults(k=8, num_threads=8)).system_throughput
        assert t8 / t4 == pytest.approx(4.0, rel=0.05)

    def test_uniform_throughput_sublinear(self):
        t4 = solve(paper_defaults(k=4, num_threads=8, pattern="uniform"))
        t8 = solve(paper_defaults(k=8, num_threads=8, pattern="uniform"))
        assert t8.system_throughput / t4.system_throughput < 3.0

    def test_ideal_network_raises_memory_latency(self):
        """Figure 10(b): with S = 0 all contention lands on the memories, so
        L_obs exceeds the finite-network system's."""
        k = 8
        real = solve(paper_defaults(k=k, num_threads=8))
        ideal = solve(paper_defaults(k=k, num_threads=8, switch_delay=0.0))
        assert ideal.l_obs > real.l_obs

    def test_tolerance_above_one_does_not_reproduce(self):
        """DEVIATION (documented in EXPERIMENTS.md): the paper claims
        tol_network up to 1.05 at k = 6..10 under locality.  Under the exact
        product-form model (and its Bard-Schweitzer fixed point), removing
        switch demand cannot reduce throughput, so tol <= 1; our DES
        simulation confirms U_p(S=0) > U_p(S=10) at these points."""
        for k in (6, 8, 10):
            res = network_tolerance(paper_defaults(k=k, num_threads=8))
            assert res.index <= 1.0 + 1e-9
            assert res.index > 0.9  # but locality keeps it close to ideal
