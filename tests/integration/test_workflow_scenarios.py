"""End-to-end user workflows: the three audiences the paper names.

The paper's introduction addresses three users -- the system architect, the
compiler writer, and the performance analyst.  Each test here walks one of
their workflows through the public API only.
"""

import pytest

import repro
from repro import (
    MMSModel,
    analyze,
    network_tolerance,
    paper_defaults,
    solve,
    threads_for_tolerance,
    tolerance_report,
    zone_boundary,
)


class TestArchitectWorkflow:
    """'A system architect experiments with the system configurations.'"""

    def test_sizing_the_switch_budget(self):
        """How slow may the switches be before the default workload leaves
        the tolerated zone? -- and does the answer obey the Eq.-5 scaling?"""
        base = paper_defaults(p_remote=0.1)
        b = zone_boundary(base, axis="switch_delay", lo=0.0, hi=200.0)
        assert not b.saturated
        # doubling the runlength roughly doubles the switch budget
        b2 = zone_boundary(
            base.with_(runlength=20.0), axis="switch_delay", lo=0.0, hi=400.0
        )
        assert b2.value == pytest.approx(2 * b.value, rel=0.25)

    def test_choosing_memory_ports(self):
        """With a next-gen (fast) interconnect, how many memory ports pay?"""
        fast = paper_defaults(switch_delay=2.0)
        gains = []
        for ports in (1, 2, 4):
            u = solve(fast.with_(memory_ports=ports)).processor_utilization
            gains.append(u)
        assert gains[1] - gains[0] > 0.05  # the first extra port pays
        assert gains[2] - gains[1] < gains[1] - gains[0]  # diminishing

    def test_subsystem_triage(self):
        """The tolerance report names the bottleneck; fixing that subsystem
        (and only that one) moves U_p substantially."""
        params = paper_defaults(p_remote=0.6)
        rep = tolerance_report(params)
        assert rep["network"].index < rep["memory"].index  # network-bound
        fix_net = solve(params.with_(switch_delay=2.0)).processor_utilization
        fix_mem = solve(params.with_(memory_latency=2.0)).processor_utilization
        base = solve(params).processor_utilization
        assert fix_net - base > 3 * (fix_mem - base)


class TestCompilerWorkflow:
    """'A compiler has to optimize a program workload.'"""

    def test_how_many_threads(self):
        """Expose only as many threads as tolerance needs."""
        nt = threads_for_tolerance(paper_defaults())
        assert nt is not None and nt <= 8
        # and confirm the choice lands in the tolerated zone
        res = network_tolerance(paper_defaults(num_threads=nt))
        assert res.index >= 0.8

    def test_when_to_redistribute_data(self):
        """'if network latency is not tolerated, then a compiler can
        redistribute the data' -- the p_remote boundary is the trigger."""
        b = zone_boundary(paper_defaults())
        bad = network_tolerance(
            paper_defaults(p_remote=min(1.0, b.value + 0.2))
        )
        good = network_tolerance(
            paper_defaults(p_remote=max(0.0, b.value - 0.2))
        )
        assert bad.index < 0.8 <= good.index

    def test_granularity_knob(self):
        """Coalescing to fewer, longer threads beats fine grain at equal
        exposed work (Table 3's recommendation)."""
        from repro.workload import coalesce

        fine = paper_defaults().workload.with_(num_threads=16, runlength=2.5)
        coarse = coalesce(coalesce(coalesce(fine, 2), 2), 2)
        u_fine = solve(
            paper_defaults(
                num_threads=fine.num_threads, runlength=fine.runlength
            )
        ).processor_utilization
        u_coarse = solve(
            paper_defaults(
                num_threads=coarse.num_threads, runlength=coarse.runlength
            )
        ).processor_utilization
        assert u_coarse > u_fine


class TestAnalystWorkflow:
    """'An analysis of latency tolerance provides an insight to the
    performance optimizations.'"""

    def test_rate_not_latency_diagnosis(self):
        """Two machines with near-identical S_obs, opposite verdicts: the
        rates decide, not the latency (the paper's core thesis)."""
        a = paper_defaults(num_threads=8, p_remote=0.196)
        b = paper_defaults(num_threads=3, p_remote=0.4)
        pa, pb = solve(a), solve(b)
        assert pa.s_obs == pytest.approx(pb.s_obs, rel=0.05)
        assert network_tolerance(a).index - network_tolerance(b).index > 0.25

    def test_closed_form_cross_check(self):
        """The measured knees agree with the closed-form laws."""
        params = paper_defaults()
        ba = analyze(params)
        lam_peak = solve(params.with_(p_remote=0.8, num_threads=24)).lambda_net
        assert lam_peak == pytest.approx(ba.lambda_net_saturation, rel=0.05)

    def test_top_level_api_surface(self):
        """Everything this file used is part of the public top level."""
        for name in (
            "solve",
            "analyze",
            "network_tolerance",
            "tolerance_report",
            "zone_boundary",
            "threads_for_tolerance",
            "paper_defaults",
            "MMSModel",
        ):
            assert name in repro.__all__
