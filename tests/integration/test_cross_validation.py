"""Integration: the three independent system descriptions agree.

Analytical CQN model (MVA) vs discrete-event simulation vs stochastic Petri
net -- built from the same MMSParams, never sharing code paths beyond the
parameter objects and topology.
"""

import pytest

from repro.core import MMSModel
from repro.params import paper_defaults
from repro.simulation import simulate
from repro.spn import simulate_spn


@pytest.fixture(scope="module")
def point():
    return paper_defaults(k=2, num_threads=4, p_remote=0.3)


@pytest.fixture(scope="module")
def model_perf(point):
    return MMSModel(point).solve()


@pytest.fixture(scope="module")
def des_result(point):
    return simulate(point, duration=40_000.0, seed=21)


@pytest.fixture(scope="module")
def spn_result(point):
    return simulate_spn(point, duration=40_000.0, seed=22)


class TestThreeWayAgreement:
    def test_utilization(self, model_perf, des_result, spn_result):
        assert des_result.processor_utilization == pytest.approx(
            model_perf.processor_utilization, rel=0.05
        )
        assert spn_result.processor_utilization == pytest.approx(
            model_perf.processor_utilization, rel=0.05
        )

    def test_lambda_net(self, model_perf, des_result, spn_result):
        assert des_result.lambda_net == pytest.approx(
            model_perf.lambda_net, rel=0.06
        )
        assert spn_result.lambda_net == pytest.approx(
            model_perf.lambda_net, rel=0.06
        )

    def test_s_obs(self, model_perf, des_result, spn_result):
        assert des_result.s_obs == pytest.approx(model_perf.s_obs, rel=0.12)
        assert spn_result.s_obs == pytest.approx(model_perf.s_obs, rel=0.12)

    def test_l_obs(self, model_perf, des_result, spn_result):
        assert des_result.l_obs == pytest.approx(model_perf.l_obs, rel=0.12)
        assert spn_result.l_obs == pytest.approx(model_perf.l_obs, rel=0.12)

    def test_access_rate(self, model_perf, des_result, spn_result):
        assert des_result.access_rate == pytest.approx(
            model_perf.access_rate, rel=0.05
        )
        assert spn_result.access_rate == pytest.approx(
            model_perf.access_rate, rel=0.05
        )


class TestSolverChain:
    """exact MVA >= accuracy of linearizer >= plain BS on a tiny instance."""

    def test_solver_hierarchy(self):
        params = paper_defaults(k=2, num_threads=2, p_remote=0.4)
        model = MMSModel(params)
        ex = model.solve(method="exact").processor_utilization
        lin = model.solve(method="linearizer").processor_utilization
        bs = model.solve(method="amva").processor_utilization
        assert abs(lin - ex) <= abs(bs - ex) + 1e-9

    def test_exact_agrees_with_simulation(self):
        """Exact MVA against the DES on the smallest machine -- the gold
        cross-check of the whole stack."""
        params = paper_defaults(k=2, num_threads=2, p_remote=0.4)
        ex = MMSModel(params).solve(method="exact")
        sim = simulate(params, duration=60_000.0, seed=33)
        assert sim.processor_utilization == pytest.approx(
            ex.processor_utilization, rel=0.04
        )
        assert sim.s_obs == pytest.approx(ex.s_obs, rel=0.08)
