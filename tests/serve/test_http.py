"""The HTTP front end: endpoint contract, error mapping, concurrency."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.model import solve
from repro.params import paper_defaults
from repro.serve import ServiceConfig, SolveService, build_server


@pytest.fixture()
def server():
    """A live server on an ephemeral port; drains and stops afterwards."""
    service = SolveService(
        ServiceConfig(min_linger_s=0.02, max_linger_s=0.1, adaptive=False)
    )
    srv = build_server("127.0.0.1", 0, service)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    host, port = srv.server_address[:2]
    yield f"http://{host}:{port}"
    srv.shutdown()
    srv.server_close()
    service.close(drain=True)
    thread.join(timeout=5)


def get(base, path):
    with urllib.request.urlopen(base + path, timeout=30) as resp:
        return resp.status, json.loads(resp.read())


def post(base, body, path="/solve"):
    req = urllib.request.Request(
        base + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestEndpoints:
    def test_healthz(self, server):
        status, body = get(server, "/healthz")
        assert status == 200
        assert body["ok"] is True
        assert body["status"] == "ok"
        assert body["breaker"] == "closed"
        assert body["queue_depth"] == 0
        assert body["max_queue"] > 0

    def test_solve_point_overrides_bitwise_vs_scalar(self, server):
        status, body = post(
            server, {"point": {"num_threads": 8, "p_remote": 0.2}}
        )
        assert status == 200 and body["ok"]
        expected = solve(paper_defaults(num_threads=8, p_remote=0.2))
        assert body["perf"] == expected.to_dict()
        assert body["batch_width"] >= 1
        assert body["latency_s"] > 0
        assert len(body["key"]) == 64

    def test_solve_nested_params_payload(self, server):
        params = paper_defaults(p_remote=0.35)
        status, body = post(
            server, {"params": params.to_dict(), "method": "symmetric"}
        )
        assert status == 200
        assert body["perf"] == solve(params, method="symmetric").to_dict()

    def test_metricsz_carries_service_and_registry(self, server):
        post(server, {"point": {"p_remote": 0.22}})
        status, body = get(server, "/metricsz")
        assert status == 200
        assert body["service"]["requests"] >= 1
        assert "counters" in body["metrics"]
        assert body["metrics"]["counters"].get("serve.requests", 0) >= 1

    def test_concurrent_requests_coalesce_and_match_goldens(self, server):
        n = 16
        results = [None] * n

        def client(i):
            results[i] = post(
                server, {"point": {"p_remote": 0.01 + 0.002 * i}}
            )

        threads = [threading.Thread(target=client, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(status == 200 for status, _ in results)
        for i, (_, body) in enumerate(results):
            expected = solve(paper_defaults(p_remote=0.01 + 0.002 * i))
            assert body["perf"] == expected.to_dict()
        assert max(body["batch_width"] for _, body in results) > 1


class TestErrorMapping:
    def test_unknown_field_is_400(self, server):
        status, body = post(server, {"point": {"warp_factor": 9}})
        assert status == 400
        assert body["ok"] is False

    def test_invalid_value_is_400(self, server):
        status, body = post(server, {"point": {"p_remote": -2.0}})
        assert status == 400
        assert "p_remote" in body["detail"]

    def test_missing_params_and_point_is_400(self, server):
        status, body = post(server, {"method": "symmetric"})
        assert status == 400

    def test_malformed_json_is_400(self, server):
        req = urllib.request.Request(
            server + "/solve", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=30)
        assert err.value.code == 400

    def test_unknown_path_is_404(self, server):
        assert post(server, {}, path="/nope")[0] == 404
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server, "/nope")
        assert err.value.code == 404

    def test_expired_deadline_is_504(self, server):
        # unique point so no cache tier can answer before the deadline check
        status, body = post(
            server, {"point": {"p_remote": 0.61}, "deadline_s": 0.0}
        )
        assert status == 504
        assert body["error"] == "DeadlineExceeded"

    def test_queue_full_is_429(self):
        service = SolveService(
            ServiceConfig(max_queue=1, memory_cache=0, max_batch=64,
                          min_linger_s=5.0, max_linger_s=10.0, adaptive=False)
        )
        srv = build_server("127.0.0.1", 0, service)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        host, port = srv.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            statuses = []
            done = threading.Event()

            def client(i):
                statuses.append(
                    post(base, {"point": {"p_remote": 0.1 + 0.01 * i}})[0]
                )
                done.set()

            # first request occupies the single slot (lingering 5s); fire it
            # async and poll the service until it is admitted
            t1 = threading.Thread(target=client, args=(0,))
            t1.start()
            for _ in range(200):
                if service.stats()["in_flight"] >= 1:
                    break
                import time
                time.sleep(0.01)
            status = post(base, {"point": {"p_remote": 0.9}})[0]
            assert status == 429
        finally:
            srv.shutdown()
            srv.server_close()
            service.close(drain=True)
            t1.join(timeout=10)
        assert statuses == [200]


def get_raw(base, path):
    """GET returning (status, content-type, body-text) without JSON parsing."""
    try:
        with urllib.request.urlopen(base + path, timeout=30) as resp:
            return resp.status, resp.headers.get("Content-Type"), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.headers.get("Content-Type"), exc.read()


class TestObservabilityEndpoints:
    def test_metricsz_prometheus_format(self, server):
        # touch an instrument so the exposition is non-trivial
        post(server, {"point": {"num_threads": 4}})
        status, ctype, body = get_raw(server, "/metricsz?format=prometheus")
        assert status == 200
        assert ctype == "text/plain; version=0.0.4; charset=utf-8"
        text = body.decode("utf-8")
        assert text.endswith("\n")
        import re

        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le=\"[^\"]+\"\})? \S+$"
        )
        for line in text.strip().splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert sample.match(line), line
        assert "repro_" in text  # namespaced registry metrics

    def test_metricsz_json_is_default(self, server):
        status, body = get(server, "/metricsz")
        assert status == 200 and body["ok"]
        assert "service" in body and "metrics" in body
        status2, body2 = get(server, "/metricsz?format=json")
        assert status2 == 200 and body2["ok"]

    def test_metricsz_unknown_format_400(self, server):
        status, _, body = get_raw(server, "/metricsz?format=xml")
        assert status == 400
        assert json.loads(body)["error"] == "BadRequest"

    def test_seriesz_returns_sample_window(self, server):
        post(server, {"point": {"num_threads": 2}})
        status, body = get(server, "/seriesz")
        assert status == 200 and body["ok"]
        assert body["interval_s"] > 0
        assert body["samples"]  # start() takes an immediate sample
        assert all("t" in s for s in body["samples"])

    def test_seriesz_window_param(self, server):
        status, body = get(server, "/seriesz?window=60")
        assert status == 200
        assert body["window_s"] <= 60.0

    def test_seriesz_bad_window_400(self, server):
        status, _, body = get_raw(server, "/seriesz?window=soon")
        assert status == 400
        assert json.loads(body)["error"] == "BadRequest"

    def test_seriesz_404_when_recorder_disabled(self):
        service = SolveService(
            ServiceConfig(
                min_linger_s=0.02,
                max_linger_s=0.1,
                adaptive=False,
                series_interval_s=0.0,
            )
        )
        assert service.recorder is None
        srv = build_server("127.0.0.1", 0, service)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        host, port = srv.server_address[:2]
        try:
            status, _, body = get_raw(f"http://{host}:{port}", "/seriesz")
            assert status == 404
            assert json.loads(body)["error"] == "RecorderDisabled"
        finally:
            srv.shutdown()
            srv.server_close()
            service.close(drain=True)
            thread.join(timeout=5)
