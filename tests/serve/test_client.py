"""The retrying client's policy, pinned without sockets.

:class:`repro.client.SolveClient` takes its transport, sleep, and RNG by
injection, so every branch of the retry loop is testable as a pure state
machine: which statuses retry (429/503/504 + transport errors) and which
fail fast (4xx/500), how ``Retry-After`` floors the jittered backoff,
and how the attempt count and time budget bound the loop.  The stub
transport returns scripted ``(status, headers, body)`` tuples -- the
same shapes ``serve/http.py`` emits.
"""

from __future__ import annotations

import json
import urllib.error

import pytest

from repro.client import (
    RequestError,
    RetryBudgetExceededError,
    ServerError,
    SolveClient,
    SolveReply,
)
from repro.params import paper_defaults

OK_BODY = {
    "ok": True,
    "key": "k" * 64,
    "perf": {"processor_utilization": 0.5},
    "source": "batched",
    "batch_width": 3,
    "latency_s": 0.012,
}


def ok(body: dict | None = None):
    return (200, {}, json.dumps(body or OK_BODY).encode())


def err(status: int, error="Overloaded", detail="shed", retry_after_s=None,
        headers=None):
    body = {"ok": False, "error": error, "detail": detail}
    if retry_after_s is not None:
        body["retry_after_s"] = retry_after_s
    return (status, headers or {}, json.dumps(body).encode())


class StubTransport:
    """Plays back a scripted list of replies; records every request."""

    def __init__(self, replies):
        self.replies = list(replies)
        self.requests = []

    def __call__(self, request, timeout_s):
        self.requests.append(request)
        reply = self.replies.pop(0)
        if isinstance(reply, Exception):
            raise reply
        return reply


class FakeSleep:
    def __init__(self):
        self.slept = []

    def __call__(self, seconds):
        self.slept.append(seconds)


class FixedRng:
    """``uniform(a, b)`` always returns the midpoint: deterministic jitter."""

    def uniform(self, a, b):
        return (a + b) / 2.0


def client(transport, **kw) -> SolveClient:
    kw.setdefault("sleep", FakeSleep())
    kw.setdefault("rng", FixedRng())
    return SolveClient("http://test.invalid:1", transport=transport, **kw)


class TestHappyPath:
    def test_first_try_success(self):
        transport = StubTransport([ok()])
        reply = client(transport).solve(point={"p_remote": 0.2})
        assert isinstance(reply, SolveReply)
        assert reply.attempts == 1 and reply.backoff_s == 0.0
        assert reply.source == "batched" and reply.batch_width == 3
        assert reply.latency_s == pytest.approx(0.012)
        request = transport.requests[0]
        assert request.get_full_url() == "http://test.invalid:1/solve"
        assert json.loads(request.data)["point"] == {"p_remote": 0.2}

    def test_params_object_serialized_to_nested_dict(self):
        transport = StubTransport([ok()])
        params = paper_defaults(p_remote=0.3)
        client(transport).solve(params)
        sent = json.loads(transport.requests[0].data)
        assert sent["params"] == params.to_dict()

    def test_client_id_header(self):
        transport = StubTransport([ok()])
        client(transport, client_id="bench-7").solve(point={})
        assert transport.requests[0].get_header("X-client-id") == "bench-7"

    def test_params_and_point_are_mutually_exclusive(self):
        c = client(StubTransport([]))
        with pytest.raises(ValueError, match="exactly one"):
            c.solve(paper_defaults(), point={})
        with pytest.raises(ValueError, match="exactly one"):
            c.solve()


class TestRetrySemantics:
    def test_retries_503_until_success(self):
        sleep = FakeSleep()
        transport = StubTransport([err(503), err(503), ok()])
        reply = client(transport, sleep=sleep).solve(point={})
        assert reply.attempts == 3
        assert len(sleep.slept) == 2
        assert reply.backoff_s == pytest.approx(sum(sleep.slept))

    @pytest.mark.parametrize("status", [429, 503, 504])
    def test_each_overload_status_is_retryable(self, status):
        transport = StubTransport([err(status), ok()])
        assert client(transport).solve(point={}).attempts == 2

    def test_retry_after_body_floors_the_backoff(self):
        sleep = FakeSleep()
        transport = StubTransport([err(503, retry_after_s=2.5), ok()])
        client(transport, sleep=sleep, backoff_base_s=0.05).solve(point={})
        # floor 2.5s + midpoint jitter of uniform(0, 0.05): never sooner
        # than the server asked
        assert sleep.slept[0] == pytest.approx(2.5 + 0.025)

    def test_retry_after_header_is_the_fallback(self):
        sleep = FakeSleep()
        transport = StubTransport(
            [err(429, headers={"Retry-After": "3"}), ok()]
        )
        client(transport, sleep=sleep, backoff_base_s=0.05).solve(point={})
        assert sleep.slept[0] >= 3.0

    def test_backoff_grows_exponentially_under_the_cap(self):
        sleep = FakeSleep()
        transport = StubTransport([err(503)] * 4 + [ok()])
        client(
            transport,
            sleep=sleep,
            max_attempts=5,
            backoff_base_s=0.1,
            backoff_cap_s=0.4,
        ).solve(point={})
        # midpoint of uniform(0, min(0.4, 0.1 * 2**n)): the cap bites on
        # the third retry
        assert sleep.slept == pytest.approx([0.05, 0.1, 0.2, 0.2])

    def test_transport_errors_are_retried(self):
        transport = StubTransport(
            [urllib.error.URLError("refused"), OSError("reset"), ok()]
        )
        reply = client(transport).solve(point={})
        assert reply.attempts == 3

    def test_garbled_body_is_retried(self):
        transport = StubTransport([(200, {}, b"not json"), ok()])
        assert client(transport).solve(point={}).attempts == 2


class TestFailFast:
    def test_400_raises_request_error_on_first_send(self):
        transport = StubTransport(
            [err(400, error="BadRequest", detail="unknown field")]
        )
        c = client(transport)
        with pytest.raises(RequestError) as exc_info:
            c.solve(point={})
        assert exc_info.value.status == 400
        assert exc_info.value.detail == "unknown field"
        assert len(transport.requests) == 1  # no blind resend of a bad request
        assert c.stats()["retries"] == 0

    def test_500_raises_server_error(self):
        transport = StubTransport(
            [err(500, error="SolverError", detail="did not converge")]
        )
        with pytest.raises(ServerError) as exc_info:
            client(transport).solve(point={})
        assert exc_info.value.status == 500
        assert len(transport.requests) == 1


class TestBudgets:
    def test_attempt_budget_exhaustion(self):
        transport = StubTransport([err(503)] * 3)
        c = client(transport, max_attempts=3)
        with pytest.raises(RetryBudgetExceededError) as exc_info:
            c.solve(point={})
        assert exc_info.value.last_status == 503
        assert exc_info.value.attempts == 3
        assert len(transport.requests) == 3

    def test_time_budget_stops_before_sleeping_past_it(self):
        sleep = FakeSleep()
        transport = StubTransport([err(503, retry_after_s=10.0)] * 2)
        c = client(
            transport, max_attempts=5, retry_budget_s=1.0, sleep=sleep
        )
        with pytest.raises(RetryBudgetExceededError):
            c.solve(point={})
        # the 10s Retry-After would blow the 1s budget: give up instead
        # of waiting it out
        assert sleep.slept == []
        assert len(transport.requests) == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            SolveClient("http://x", max_attempts=0)
        with pytest.raises(ValueError, match="retry_budget_s"):
            SolveClient("http://x", retry_budget_s=-1.0)


class TestAccounting:
    def test_stats_accumulate_across_calls(self):
        sleep = FakeSleep()
        transport = StubTransport([err(503), ok(), err(503)] + [err(503)])
        c = client(transport, max_attempts=2, sleep=sleep)
        c.solve(point={})
        with pytest.raises(RetryBudgetExceededError):
            c.solve(point={})
        stats = c.stats()
        assert stats["sent"] == 4
        assert stats["retries"] == 2
        assert stats["gave_up"] == 1
        assert stats["backoff_s"] == pytest.approx(sum(sleep.slept))

    def test_healthz_does_not_retry(self):
        transport = StubTransport(
            [(503, {}, json.dumps({"status": "overloaded"}).encode())]
        )
        body = client(transport).healthz()
        assert body == {"status": "overloaded"}
        assert len(transport.requests) == 1
