"""The coalescing solve service: correctness, caching, and guard rails.

The acceptance bar (ISSUE 5): service responses **bitwise identical** to
scalar ``MMSModel.solve`` for the same params, explicit backpressure
(``QueueFullError``, never a hang), single-flight dedup, two-tier cache
interop with the sweep store, deadlines, and drain-on-close semantics.
"""

import asyncio
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import MMSModel, solve
from repro.params import paper_defaults
from repro.runner.spec import JobSpec
from repro.runner.store import ResultStore
from repro.serve import (
    DeadlineExceededError,
    QueueFullError,
    ServiceClosedError,
    ServiceConfig,
    SolveService,
)

#: generous coalescing window so tests control flush timing deterministically
SLOW = dict(min_linger_s=0.02, max_linger_s=0.1, adaptive=False)


def unique_points(n, start=0.01, step=0.001):
    return [paper_defaults(p_remote=start + step * i) for i in range(n)]


class TestBitwiseIdentity:
    def test_batched_burst_matches_scalar_exactly(self):
        points = unique_points(12)
        with SolveService(ServiceConfig(max_batch=32, **SLOW)) as svc:
            futures = [svc.submit(p) for p in points]
            results = [f.result(timeout=30) for f in futures]
        assert max(r.batch_width for r in results) >= 2, "burst never coalesced"
        for r, p in zip(results, points):
            assert r.perf.to_dict() == solve(p).to_dict()

    def test_non_symmetric_method_degrades_to_scalar_and_matches(self):
        p = paper_defaults(p_remote=0.3)
        with SolveService(ServiceConfig(**SLOW)) as svc:
            r = svc.solve(p, method="amva", timeout=30)
        assert r.source == "scalar"
        assert r.perf.to_dict() == MMSModel(p).solve(method="amva").to_dict()

    def test_hotspot_pattern_served_scalar(self):
        p = paper_defaults(pattern="hotspot", p_remote=0.2)
        with SolveService(ServiceConfig(**SLOW)) as svc:
            r = svc.solve(p, timeout=30)
        assert r.perf.to_dict() == solve(p).to_dict()

    @settings(max_examples=20, deadline=None)
    @given(
        num_threads=st.integers(min_value=1, max_value=16),
        p_remote=st.floats(min_value=0.01, max_value=0.75),
        runlength=st.floats(min_value=1.0, max_value=40.0),
        width=st.integers(min_value=1, max_value=6),
    )
    def test_property_any_batch_composition_is_bitwise(
        self, num_threads, p_remote, runlength, width
    ):
        """The probe point's answer never depends on its batch-mates."""
        probe = paper_defaults(
            num_threads=num_threads, p_remote=p_remote, runlength=runlength
        )
        mates = unique_points(width, start=0.02, step=0.003)
        with SolveService(ServiceConfig(max_batch=16, **SLOW)) as svc:
            futures = [svc.submit(p) for p in [probe, *mates]]
            got = futures[0].result(timeout=30)
        assert got.perf.to_dict() == solve(probe).to_dict()


class TestCoalescing:
    def test_flush_on_max_batch_without_waiting_linger(self):
        cfg = ServiceConfig(max_batch=4, min_linger_s=5.0, max_linger_s=10.0,
                            adaptive=False)
        with SolveService(cfg) as svc:
            t0 = time.monotonic()
            futures = [svc.submit(p) for p in unique_points(4)]
            results = [f.result(timeout=30) for f in futures]
            elapsed = time.monotonic() - t0
        assert elapsed < 5.0, "full bucket must flush before the linger"
        assert all(r.batch_width == 4 for r in results)

    def test_flush_on_linger_for_partial_bucket(self):
        cfg = ServiceConfig(max_batch=64, min_linger_s=0.01, max_linger_s=0.05,
                            adaptive=False)
        with SolveService(cfg) as svc:
            results = [f.result(timeout=30)
                       for f in [svc.submit(p) for p in unique_points(3)]]
        assert all(r.batch_width == 3 for r in results)

    def test_adaptive_sparse_traffic_answers_immediately(self):
        cfg = ServiceConfig(max_batch=64, min_linger_s=0.0,
                            max_linger_s=0.02, adaptive=True)
        with SolveService(cfg) as svc:
            svc.solve(paper_defaults(p_remote=0.11), timeout=30)
            time.sleep(0.08)  # gap >> max_linger -> EWMA says don't wait
            t0 = time.monotonic()
            svc.solve(paper_defaults(p_remote=0.12), timeout=30)
            elapsed = time.monotonic() - t0
        # no-signal/sparse traffic should not pay the full linger window
        assert elapsed < 0.5

    def test_stats_record_batches_and_widths(self):
        with SolveService(ServiceConfig(max_batch=8, **SLOW)) as svc:
            for f in [svc.submit(p) for p in unique_points(8)]:
                f.result(timeout=30)
            stats = svc.stats()
        assert stats["batches"] >= 1
        assert stats["batch_width"]["max"] >= 2
        assert stats["latency_s"]["count"] == 8
        assert stats["latency_s"]["p99"] >= stats["latency_s"]["p50"] > 0


class TestTwoTierCache:
    def test_memory_hit_on_repeat(self):
        p = paper_defaults(p_remote=0.2)
        with SolveService(ServiceConfig(**SLOW)) as svc:
            first = svc.solve(p, timeout=30)
            second = svc.solve(p, timeout=30)
        assert second.source == "memory"
        assert second.perf.to_dict() == first.perf.to_dict()

    def test_single_flight_joins_inflight_key(self):
        p = paper_defaults(p_remote=0.33)
        with SolveService(ServiceConfig(**SLOW)) as svc:
            futures = [svc.submit(p) for _ in range(5)]
            results = [f.result(timeout=30) for f in futures]
            stats = svc.stats()
        assert stats["singleflight_hits"] == 4
        assert len({r.perf.to_dict()["processor_utilization"]
                    for r in results}) == 1
        assert sorted(r.source for r in results)[:4] == ["coalesced"] * 4

    def test_store_hit_and_record_interop_with_sweep_store(self, tmp_path):
        p = paper_defaults(p_remote=0.27)
        store_dir = str(tmp_path / "cache")
        cfg = ServiceConfig(store_dir=store_dir, **SLOW)
        with SolveService(cfg) as svc:
            svc.solve(p, timeout=30)
        # a *sweep* store opened on the same dir serves the served record
        store = ResultStore(store_dir)
        rec = store.get(JobSpec(params=p, method="auto").key())
        assert rec is not None
        assert rec["perf"] == solve(p).to_dict()
        assert rec["method"] == "symmetric"

    def test_fresh_service_reads_store_written_by_previous_one(self, tmp_path):
        p = paper_defaults(p_remote=0.41)
        store_dir = str(tmp_path / "cache")
        with SolveService(ServiceConfig(store_dir=store_dir, **SLOW)) as svc:
            svc.solve(p, timeout=30)
        with SolveService(ServiceConfig(store_dir=store_dir, **SLOW)) as svc:
            r = svc.solve(p, timeout=30)
        assert r.source == "store"
        assert r.perf.to_dict() == solve(p).to_dict()

    def test_memory_cache_lru_eviction(self):
        cfg = ServiceConfig(memory_cache=2, **SLOW)
        points = unique_points(3)
        with SolveService(cfg) as svc:
            for p in points:
                svc.solve(p, timeout=30)
            # oldest evicted -> re-solved, newest still cached
            assert svc.solve(points[-1], timeout=30).source == "memory"
            assert svc.solve(points[0], timeout=30).source != "memory"


class TestBackpressure:
    def test_queue_full_raises_structured_error(self):
        cfg = ServiceConfig(max_queue=3, memory_cache=0,
                            min_linger_s=5.0, max_linger_s=10.0,
                            adaptive=False, max_batch=64)
        svc = SolveService(cfg)
        try:
            accepted, rejected = 0, 0
            for p in unique_points(8):
                try:
                    svc.submit(p)
                    accepted += 1
                except QueueFullError:
                    rejected += 1
            assert accepted == 3
            assert rejected == 5
            assert svc.stats()["rejected"] == 5
        finally:
            svc.close(drain=True)

    def test_rejection_does_not_block_or_hang(self):
        cfg = ServiceConfig(max_queue=1, memory_cache=0,
                            min_linger_s=5.0, max_linger_s=10.0,
                            adaptive=False, max_batch=64)
        svc = SolveService(cfg)
        try:
            svc.submit(paper_defaults(p_remote=0.1))
            t0 = time.monotonic()
            with pytest.raises(QueueFullError):
                svc.submit(paper_defaults(p_remote=0.2))
            assert time.monotonic() - t0 < 1.0
        finally:
            svc.close(drain=True)

    def test_capacity_frees_after_flush(self):
        cfg = ServiceConfig(max_queue=2, memory_cache=0,
                            min_linger_s=0.0, max_linger_s=0.0,
                            adaptive=False)
        with SolveService(cfg) as svc:
            for p in unique_points(6):
                svc.submit(p).result(timeout=30)  # serialized: always room


class TestDeadlines:
    def test_expired_deadline_fails_without_solving(self):
        with SolveService(ServiceConfig(memory_cache=0, **SLOW)) as svc:
            future = svc.submit(paper_defaults(p_remote=0.5), deadline_s=0.0)
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=30)
            assert svc.stats()["deadline_exceeded"] == 1

    def test_default_deadline_from_config(self):
        cfg = ServiceConfig(memory_cache=0, default_deadline_s=0.0,
                            min_linger_s=0.05, max_linger_s=0.1,
                            adaptive=False)
        with SolveService(cfg) as svc:
            with pytest.raises(DeadlineExceededError):
                svc.submit(paper_defaults(p_remote=0.5)).result(timeout=30)

    def test_generous_deadline_still_answers(self):
        with SolveService(ServiceConfig(**SLOW)) as svc:
            r = svc.solve(paper_defaults(p_remote=0.2), deadline_s=30.0,
                          timeout=30)
        assert r.perf.converged


class TestLifecycle:
    def test_close_drains_pending_requests(self):
        cfg = ServiceConfig(memory_cache=0, min_linger_s=5.0,
                            max_linger_s=10.0, adaptive=False, max_batch=64)
        svc = SolveService(cfg)
        futures = [svc.submit(p) for p in unique_points(3)]
        svc.close(drain=True)  # must flush the lingering bucket, not strand it
        for f, p in zip(futures, unique_points(3)):
            assert f.result(timeout=5).perf.to_dict() == solve(p).to_dict()

    def test_close_without_drain_fails_pending(self):
        cfg = ServiceConfig(memory_cache=0, min_linger_s=5.0,
                            max_linger_s=10.0, adaptive=False, max_batch=64)
        svc = SolveService(cfg)
        future = svc.submit(paper_defaults(p_remote=0.6))
        svc.close(drain=False)
        with pytest.raises(ServiceClosedError):
            future.result(timeout=5)

    def test_submit_after_close_refused(self):
        svc = SolveService(ServiceConfig(**SLOW))
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.submit(paper_defaults())

    def test_close_is_idempotent(self):
        svc = SolveService(ServiceConfig(**SLOW))
        svc.close()
        svc.close()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(max_batch=0)
        with pytest.raises(ValueError):
            ServiceConfig(min_linger_s=0.5, max_linger_s=0.1)
        with pytest.raises(ValueError):
            ServiceConfig(max_queue=0)
        with pytest.raises(ValueError):
            ServiceConfig(memory_cache=-1)


class TestAsyncio:
    def test_asolve_gather_matches_scalar(self):
        points = unique_points(6)

        async def main():
            with SolveService(ServiceConfig(max_batch=16, **SLOW)) as svc:
                return await asyncio.gather(
                    *(svc.asolve(p) for p in points)
                )

        results = asyncio.run(main())
        for r, p in zip(results, points):
            assert r.perf.to_dict() == solve(p).to_dict()
        assert max(r.batch_width for r in results) >= 2

    def test_asolve_propagates_deadline_error(self):
        async def main():
            with SolveService(ServiceConfig(memory_cache=0, **SLOW)) as svc:
                await svc.asolve(paper_defaults(p_remote=0.5), deadline_s=0.0)

        with pytest.raises(DeadlineExceededError):
            asyncio.run(main())


class TestDegradation:
    def test_injected_batch_fault_degrades_to_scalar_and_matches(self):
        import repro

        points = unique_points(4, start=0.05, step=0.01)
        prev = repro.configure(
            fault_plan={"seed": 3, "sites": {"solve.raise": {"on_nth": [1]}}}
        )
        try:
            with SolveService(ServiceConfig(max_batch=8, **SLOW)) as svc:
                futures = [svc.submit(p) for p in points]
                results = [f.result(timeout=30) for f in futures]
        finally:
            repro.configure(**prev)
        assert any(r.source == "scalar" for r in results)
        for r, p in zip(results, points):
            assert r.perf.to_dict() == solve(p).to_dict()

    def test_concurrent_submitters_all_answered(self):
        points = unique_points(24)
        results = [None] * len(points)

        with SolveService(ServiceConfig(max_batch=16, **SLOW)) as svc:
            def client(i):
                results[i] = svc.solve(points[i], timeout=30)

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(len(points))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        for r, p in zip(results, points):
            assert r.perf.to_dict() == solve(p).to_dict()
