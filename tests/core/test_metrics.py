"""Unit tests for MMSPerformance derived measures."""

import numpy as np
import pytest

from repro.core import MMSModel, solve
from repro.params import paper_defaults


@pytest.fixture(scope="module")
def perf():
    return solve(paper_defaults())


class TestDerivedMeasures:
    def test_cycle_time_littles_law(self, perf):
        """n_t = lambda_i * cycle_time."""
        assert perf.cycle_time * perf.access_rate == pytest.approx(8.0)

    def test_summary_keys(self, perf):
        s = perf.summary()
        assert set(s) == {
            "U_p",
            "lambda_net",
            "S_obs",
            "L_obs",
            "throughput",
            "access_rate",
        }

    def test_effective_access_cost_definition(self, perf):
        assert perf.effective_access_cost == pytest.approx(
            1.0 / perf.access_rate - 10.0
        )

    def test_observed_access_latency_mix(self, perf):
        expected = 0.8 * perf.l_obs_local + 0.2 * perf.remote_round_trip
        assert perf.observed_access_latency == pytest.approx(expected)

    def test_processor_busy_equals_utilization_when_no_overhead(self, perf):
        assert perf.processor_busy == pytest.approx(perf.processor_utilization)

    def test_context_switch_splits_busy_and_useful(self):
        perf = solve(paper_defaults(context_switch=5.0))
        assert perf.processor_busy == pytest.approx(
            perf.access_rate * 15.0
        )
        assert perf.processor_utilization == pytest.approx(perf.access_rate * 10.0)
        assert perf.processor_busy > perf.processor_utilization

    def test_cycle_time_infinite_at_zero_rate(self):
        perf = solve(paper_defaults())
        object.__setattr__(perf, "access_rate", 0.0)
        assert perf.cycle_time == np.inf
        assert perf.effective_access_cost == np.inf


class TestCycleBalance:
    def test_cycle_decomposition(self, perf):
        """Cycle time = processor residence + memory + network residence.

        With n_t threads the cycle includes queueing at the processor behind
        sibling threads; the residence times from the solution must add up to
        n_t / lambda (MVA consistency)."""
        params = paper_defaults()
        model = MMSModel(params)
        visits, service, types, srv = model.station_arrays()
        from repro.queueing import solve_symmetric

        sol = solve_symmetric(visits, service, types, 8)
        total_residence = float(np.dot(visits, sol.waiting))
        assert total_residence == pytest.approx(8.0 / sol.throughput, rel=1e-9)
