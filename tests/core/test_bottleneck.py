"""Unit tests for the closed-form bottleneck laws (Eqs. 4 and 5)."""

import pytest

from repro.core import (
    analyze,
    critical_p_remote,
    lambda_net_saturation,
    saturation_utilization,
)
from repro.core.bottleneck import (
    memory_saturation_p_remote,
    network_saturation_p_remote,
)
from repro.params import paper_defaults


class TestLambdaNetSaturation:
    def test_paper_value(self):
        """Eq. (4) = 1/(2 * 1.733 * 10) ~= 0.029 at the defaults."""
        assert lambda_net_saturation(paper_defaults()) == pytest.approx(
            0.0288, abs=0.0005
        )

    def test_independent_of_workload_intensity(self):
        """Saturation rate depends only on the pattern and S."""
        a = lambda_net_saturation(paper_defaults(num_threads=2, runlength=5.0))
        b = lambda_net_saturation(paper_defaults(num_threads=20, runlength=50.0))
        assert a == b

    def test_scales_inversely_with_switch_delay(self):
        a = lambda_net_saturation(paper_defaults(switch_delay=10.0))
        b = lambda_net_saturation(paper_defaults(switch_delay=20.0))
        assert a == pytest.approx(2 * b)

    def test_infinite_for_zero_delay(self):
        assert lambda_net_saturation(paper_defaults(switch_delay=0.0)) == float(
            "inf"
        )

    def test_uniform_pattern_lower_saturation(self):
        """Uniform traffic travels farther, so the network saturates sooner."""
        geo = lambda_net_saturation(paper_defaults(pattern="geometric"))
        uni = lambda_net_saturation(paper_defaults(pattern="uniform"))
        assert uni < geo


class TestCriticalPRemote:
    def test_paper_values(self):
        """Eq. (5): 0.18 at R=10 and ~0.37 at R=20."""
        assert critical_p_remote(paper_defaults(runlength=10.0)) == pytest.approx(
            0.183, abs=0.002
        )
        assert critical_p_remote(paper_defaults(runlength=20.0)) == pytest.approx(
            0.366, abs=0.004
        )

    def test_linear_in_runlength(self):
        c10 = critical_p_remote(paper_defaults(runlength=10.0))
        c20 = critical_p_remote(paper_defaults(runlength=20.0))
        assert c20 == pytest.approx(2 * c10)

    def test_clipped_at_one(self):
        assert critical_p_remote(paper_defaults(runlength=1000.0)) == 1.0

    def test_context_switch_extends_tolerance(self):
        base = critical_p_remote(paper_defaults())
        with_c = critical_p_remote(paper_defaults(context_switch=5.0))
        assert with_c > base

    def test_zero_switch_delay(self):
        assert critical_p_remote(paper_defaults(switch_delay=0.0)) == 1.0


class TestNetworkSaturationPRemote:
    def test_paper_values(self):
        """Figures 4(c)/5(c): lambda_net saturates near p_remote 0.3 / 0.6."""
        assert network_saturation_p_remote(
            paper_defaults(runlength=10.0)
        ) == pytest.approx(0.29, abs=0.01)
        assert network_saturation_p_remote(
            paper_defaults(runlength=20.0)
        ) == pytest.approx(0.58, abs=0.01)


class TestMemorySaturationPRemote:
    def test_zero_when_r_matches_l(self):
        """R = L: the local memory never out-runs the processor."""
        assert memory_saturation_p_remote(paper_defaults()) == 0.0

    def test_positive_when_memory_slow(self):
        p = memory_saturation_p_remote(
            paper_defaults(runlength=5.0, memory_latency=20.0)
        )
        assert p == pytest.approx(0.75)

    def test_zero_delay_memory(self):
        assert (
            memory_saturation_p_remote(paper_defaults(memory_latency=0.0)) == 0.0
        )


class TestSaturationUtilization:
    def test_ceiling_below_one_when_saturated(self):
        u = saturation_utilization(paper_defaults(p_remote=0.6))
        assert u == pytest.approx(10.0 * 0.0288 / 0.6, abs=0.01)

    def test_one_when_unconstrained(self):
        assert saturation_utilization(paper_defaults(p_remote=0.0)) == 1.0
        assert saturation_utilization(paper_defaults(switch_delay=0.0)) == 1.0

    def test_model_respects_ceiling(self):
        """The solved U_p never exceeds the bottleneck ceiling."""
        from repro.core import solve

        for pr in (0.4, 0.6, 0.8):
            params = paper_defaults(p_remote=pr, num_threads=16)
            assert (
                solve(params).processor_utilization
                <= saturation_utilization(params) + 1e-6
            )


class TestAnalyze:
    def test_fields_consistent(self):
        ba = analyze(paper_defaults())
        assert ba.d_avg == pytest.approx(1.7333, abs=1e-3)
        assert ba.unloaded_round_trip == pytest.approx(2 * (ba.d_avg + 1) * 10.0)
        assert not ba.processor_stays_busy  # p_remote=0.2 > 0.183

    def test_processor_stays_busy_below_critical(self):
        ba = analyze(paper_defaults(p_remote=0.1))
        assert ba.processor_stays_busy

    def test_single_node(self):
        ba = analyze(paper_defaults(k=1))
        assert ba.d_avg == 0.0
        assert ba.lambda_net_saturation == float("inf")
