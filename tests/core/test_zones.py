"""Tests for the operating-zone boundary finder."""

import pytest

from repro.core import (
    analyze,
    network_tolerance,
    threads_for_tolerance,
    zone_boundary,
)
from repro.params import paper_defaults


class TestZoneBoundary:
    def test_boundary_hits_threshold(self):
        b = zone_boundary(paper_defaults())
        assert b.tolerance == pytest.approx(0.8, abs=1e-3)
        assert not b.saturated

    def test_boundary_between_endpoints(self):
        b = zone_boundary(paper_defaults())
        lo_tol = network_tolerance(paper_defaults(p_remote=0.01)).index
        hi_tol = network_tolerance(paper_defaults(p_remote=0.99)).index
        assert hi_tol < 0.8 < lo_tol
        assert 0.0 < b.value < 1.0

    def test_boundary_beyond_eq5_critical(self):
        """The measured 0.8-zone boundary sits above Eq. 5's unloaded
        critical p_remote (multithreading buys slack past the unloaded
        bound)."""
        params = paper_defaults()
        b = zone_boundary(params)
        assert b.value > analyze(params).critical_p_remote

    def test_higher_runlength_moves_boundary_right(self):
        b10 = zone_boundary(paper_defaults(runlength=10.0))
        b20 = zone_boundary(paper_defaults(runlength=20.0))
        assert b20.value > b10.value

    def test_switch_delay_axis(self):
        b = zone_boundary(
            paper_defaults(p_remote=0.05),
            axis="switch_delay",
            lo=0.0,
            hi=100.0,
        )
        assert not b.saturated
        assert 0.0 < b.value < 100.0
        # at the boundary, tolerance is at the threshold
        assert b.tolerance == pytest.approx(0.8, abs=1e-3)

    def test_saturated_bracket(self):
        """If even the worst bracket edge is tolerated, report saturation."""
        b = zone_boundary(
            paper_defaults(runlength=200.0), lo=0.0, hi=0.3
        )
        assert b.saturated
        assert b.tolerance >= 0.8

    def test_memory_subsystem(self):
        b = zone_boundary(
            paper_defaults(num_threads=2),
            axis="memory_latency",
            subsystem="memory",
            lo=0.0,
            hi=100.0,
        )
        assert b.tolerance == pytest.approx(0.8, abs=1e-3)

    def test_unknown_subsystem(self):
        with pytest.raises(ValueError):
            zone_boundary(paper_defaults(), subsystem="disk")


class TestThreadsForTolerance:
    def test_paper_rule_of_thumb(self):
        """A handful of threads suffices at the default point."""
        nt = threads_for_tolerance(paper_defaults())
        assert nt is not None
        assert 2 <= nt <= 8

    def test_saturated_network_unreachable(self):
        """Past IN saturation no thread count recovers the tolerated zone."""
        assert (
            threads_for_tolerance(paper_defaults(p_remote=0.4), max_threads=32)
            is None
        )

    def test_scales_with_machine(self):
        """The needed n_t stays flat with machine size (paper, Section 7)."""
        nts = [
            threads_for_tolerance(paper_defaults(k=k)) for k in (2, 4, 8, 10)
        ]
        assert all(nt is not None for nt in nts)
        assert max(nts) - min(nts) <= 2  # type: ignore[arg-type]
