"""Tests for the open-network baseline model."""

import pytest

from repro.core import open_network_latency, solve
from repro.params import paper_defaults


class TestOpenNetworkLatency:
    def test_unloaded_limit(self):
        """At lambda -> 0 the estimate is the unloaded one-way latency
        (d_avg + 1) * S."""
        est = open_network_latency(paper_defaults(), 0.0)
        assert est.s_obs == pytest.approx((1.7333 + 1) * 10.0, rel=1e-3)
        assert est.stable

    def test_matches_closed_model_at_light_load(self):
        params = paper_defaults(p_remote=0.05)
        perf = solve(params)
        est = open_network_latency(params, perf.lambda_net)
        assert est.s_obs == pytest.approx(perf.s_obs, rel=0.08)

    def test_diverges_at_saturation(self):
        params = paper_defaults()
        est = open_network_latency(params, 0.0289)  # just past Eq. (4)
        assert est.s_obs == float("inf")
        assert not est.stable

    def test_monotone_in_rate(self):
        params = paper_defaults()
        lat = [
            open_network_latency(params, lam).s_obs
            for lam in (0.005, 0.01, 0.02, 0.025)
        ]
        assert lat == sorted(lat)

    def test_utilizations(self):
        params = paper_defaults()
        est = open_network_latency(params, 0.01)
        assert est.rho_inbound == pytest.approx(0.01 * 2 * 1.7333 * 10, rel=1e-3)
        assert est.rho_outbound == pytest.approx(0.01 * 2 * 10)

    def test_zero_delay_network(self):
        est = open_network_latency(paper_defaults(switch_delay=0.0), 0.5)
        assert est.s_obs == 0.0
        assert est.stable

    def test_single_node(self):
        est = open_network_latency(paper_defaults(k=1), 0.1)
        assert est.s_obs == 0.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            open_network_latency(paper_defaults(), -0.1)

    def test_uniform_pattern_saturates_sooner(self):
        geo = open_network_latency(paper_defaults(), 0.02)
        uni = open_network_latency(paper_defaults(pattern="uniform"), 0.02)
        assert uni.rho_inbound > geo.rho_inbound
        assert uni.s_obs > geo.s_obs
