"""Unit tests for the MMS analytical model."""

import numpy as np
import pytest

from repro.core import MMSModel, solve
from repro.params import paper_defaults


@pytest.fixture
def default_perf():
    return solve(paper_defaults())


class TestStationArrays:
    def test_layout(self):
        model = MMSModel(paper_defaults())
        v, s, t, srv = model.station_arrays()
        p = 16
        assert v.shape == s.shape == t.shape == (4 * p,)
        # processor 0 visited once, others never
        assert v[0] == 1.0 and v[1:p].sum() == 0.0
        # memory visits sum to 1
        assert v[p : 2 * p].sum() == pytest.approx(1.0)

    def test_service_values(self):
        model = MMSModel(paper_defaults(memory_latency=7.0, switch_delay=3.0))
        _, s, t, _srv = model.station_arrays()
        assert np.allclose(s[t == 1], 7.0)
        assert np.allclose(s[t == 2], 3.0)
        assert np.allclose(s[t == 3], 3.0)

    def test_context_switch_in_processor_service(self):
        model = MMSModel(paper_defaults(context_switch=2.0))
        _, s, t, _srv = model.station_arrays()
        assert np.allclose(s[t == 0], 12.0)

    def test_full_network_shape(self):
        net = MMSModel(paper_defaults()).build_network()
        assert net.num_classes == 16
        assert net.num_stations == 64
        assert (net.populations == 8).all()


class TestSolve:
    def test_utilization_in_unit_interval(self, default_perf):
        assert 0.0 < default_perf.processor_utilization <= 1.0

    def test_converged(self, default_perf):
        assert default_perf.converged

    def test_lambda_net_is_p_remote_share(self, default_perf):
        assert default_perf.lambda_net == pytest.approx(
            0.2 * default_perf.access_rate
        )

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            MMSModel(paper_defaults()).solve(method="magic")

    def test_exact_method_on_tiny_instance(self):
        params = paper_defaults(k=2, num_threads=2)
        ex = MMSModel(params).solve(method="exact")
        sym = MMSModel(params).solve(method="symmetric")
        # BS vs exact: small approximation error expected
        assert sym.processor_utilization == pytest.approx(
            ex.processor_utilization, rel=0.05
        )

    def test_more_threads_more_utilization(self):
        u = [
            solve(paper_defaults(num_threads=n)).processor_utilization
            for n in (1, 2, 4, 8, 16)
        ]
        assert all(a < b + 1e-12 for a, b in zip(u, u[1:]))

    def test_s_obs_grows_with_threads(self):
        """Paper, Figure 4(b): S_obs increases roughly linearly in n_t."""
        s = [solve(paper_defaults(num_threads=n)).s_obs for n in (2, 4, 8, 16)]
        assert all(a < b for a, b in zip(s, s[1:]))

    def test_unloaded_s_obs_approaches_formula(self):
        """At n_t = 1 and tiny p_remote, S_obs -> (d_avg + 1) * S."""
        params = paper_defaults(num_threads=1, p_remote=0.001)
        perf = solve(params)
        model = MMSModel(params)
        expected = (model.d_avg + 1.0) * 10.0
        assert perf.s_obs == pytest.approx(expected, rel=0.02)

    def test_zero_p_remote_no_network(self):
        perf = solve(paper_defaults(p_remote=0.0))
        assert perf.lambda_net == 0.0
        assert perf.s_obs == 0.0
        assert perf.l_obs_remote == 0.0

    def test_local_only_balanced_system(self):
        """p_remote=0, R=L: two balanced stations, U_p = n/(n+1)."""
        perf = solve(paper_defaults(p_remote=0.0, num_threads=8))
        assert perf.processor_utilization == pytest.approx(8 / 9, rel=1e-6)

    def test_single_node_machine(self):
        perf = solve(paper_defaults(k=1, num_threads=4, p_remote=0.0))
        assert perf.processor_utilization == pytest.approx(4 / 5, rel=1e-6)

    def test_zero_switch_delay(self):
        perf = solve(paper_defaults(switch_delay=0.0))
        assert perf.s_obs == 0.0
        assert perf.processor_utilization > solve(
            paper_defaults()
        ).processor_utilization

    def test_network_saturation_ceiling(self):
        """Deep in saturation, lambda_net approaches Eq. (4)'s limit."""
        from repro.core import lambda_net_saturation

        params = paper_defaults(p_remote=0.8, num_threads=20)
        perf = solve(params)
        sat = lambda_net_saturation(params)
        assert perf.lambda_net <= sat * 1.001
        assert perf.lambda_net == pytest.approx(sat, rel=0.15)

    def test_system_throughput(self, default_perf):
        assert default_perf.system_throughput == pytest.approx(
            16 * default_perf.processor_utilization
        )

    def test_subsystem_stats_populated(self, default_perf):
        assert default_perf.processor.utilization == pytest.approx(
            default_perf.processor_busy
        )
        assert default_perf.memory.utilization > 0
        assert default_perf.inbound.queue_length >= 0

    def test_memory_utilization_is_xl(self, default_perf):
        """Every memory serves exactly one access per cycle: U_mem = X*L."""
        assert default_perf.memory.utilization == pytest.approx(
            default_perf.access_rate * 10.0
        )

    def test_remote_latency_exceeds_local(self):
        perf = solve(paper_defaults(p_remote=0.4))
        # same service, but the class's own-queue correction differs only
        # marginally; they should be close but both near L_obs
        assert perf.l_obs_local > 0
        assert perf.l_obs_remote > 0
        assert perf.l_obs == pytest.approx(
            0.8 * perf.l_obs_local + 0.2 * perf.l_obs_remote, rel=0.25
        )

    def test_round_trip_composition(self):
        perf = solve(paper_defaults(p_remote=0.3))
        assert perf.remote_round_trip == pytest.approx(
            2 * perf.s_obs + perf.l_obs_remote
        )


class TestSolverAgreement:
    def test_linearizer_close_to_amva(self):
        params = paper_defaults(k=2, num_threads=4)
        a = MMSModel(params).solve(method="amva")
        l = MMSModel(params).solve(method="linearizer")
        assert l.processor_utilization == pytest.approx(
            a.processor_utilization, rel=0.1
        )

    def test_linearizer_closer_to_exact_than_amva(self):
        params = paper_defaults(k=2, num_threads=3)
        model = MMSModel(params)
        ex = model.solve(method="exact").processor_utilization
        bs = model.solve(method="amva").processor_utilization
        lin = model.solve(method="linearizer").processor_utilization
        assert abs(lin - ex) <= abs(bs - ex) + 1e-9
