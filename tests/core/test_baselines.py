"""Unit tests for the baseline analytic models."""

import pytest

from repro.core import (
    MMSModel,
    agarwal_utilization,
    kurihara_access_cost,
    network_tolerance,
)
from repro.params import paper_defaults


class TestAgarwal:
    def test_linear_regime(self):
        """Below saturation, utilization is n_t * R_eff / (R_eff + T)."""
        pred = agarwal_utilization(paper_defaults(num_threads=1))
        expected = 10.0 / (10.0 + pred.latency)
        assert pred.utilization == pytest.approx(expected)

    def test_saturates_at_one(self):
        pred = agarwal_utilization(paper_defaults(num_threads=50))
        assert pred.utilization == 1.0

    def test_saturation_thread_count(self):
        pred = agarwal_utilization(paper_defaults())
        assert pred.saturation_threads == pytest.approx(1 + pred.latency / 10.0)

    def test_latency_mixes_local_and_remote(self):
        pred = agarwal_utilization(paper_defaults(p_remote=0.0))
        assert pred.latency == pytest.approx(10.0)  # memory only
        pred2 = agarwal_utilization(paper_defaults(p_remote=1.0))
        # full remote round trip: 2(d_avg+1)S + L
        assert pred2.latency == pytest.approx(2 * 2.7333 * 10 + 10, rel=1e-3)

    def test_optimistic_versus_queueing_model(self):
        """Ignoring contention, Agarwal's model over-predicts utilization at
        moderate thread counts."""
        params = paper_defaults(num_threads=8)
        contention_free = agarwal_utilization(params).utilization
        queueing = MMSModel(params).solve().processor_utilization
        assert contention_free >= queueing - 1e-9

    def test_matches_queueing_model_at_one_thread(self):
        """With a single thread there is no self-contention, but remote
        accesses still queue behind *other* processors' accesses -- Agarwal
        remains an upper bound, and a fairly tight one."""
        params = paper_defaults(num_threads=1)
        a = agarwal_utilization(params).utilization
        q = MMSModel(params).solve().processor_utilization
        assert q <= a + 1e-9
        assert q == pytest.approx(a, rel=0.25)

    def test_context_switch_reduces_useful_share(self):
        with_c = agarwal_utilization(
            paper_defaults(num_threads=50, context_switch=10.0)
        )
        assert with_c.utilization == pytest.approx(0.5)


class TestKuriharaAccessCost:
    def test_cost_near_zero_when_tolerated(self):
        rep = kurihara_access_cost(paper_defaults(num_threads=16, p_remote=0.1))
        assert rep.effective_cost < 2.0
        assert rep.hidden_fraction > 0.9

    def test_cost_high_when_starved(self):
        rep = kurihara_access_cost(paper_defaults(num_threads=1, p_remote=0.8))
        assert rep.effective_cost > 20.0
        assert rep.hidden_fraction < 0.5

    def test_observed_latency_positive(self):
        rep = kurihara_access_cost(paper_defaults())
        assert rep.observed_latency > 10.0  # at least the memory service

    def test_accepts_precomputed_performance(self):
        params = paper_defaults()
        perf = MMSModel(params).solve()
        rep = kurihara_access_cost(params, performance=perf)
        assert rep.observed_latency == pytest.approx(perf.observed_access_latency)

    def test_access_cost_not_a_tolerance_indicator(self):
        """The paper's Section-1 conjecture: two configurations can pay a
        similar effective access cost yet sit in different tolerance zones --
        so access cost does not measure latency tolerance."""
        a = paper_defaults(num_threads=4, runlength=5.0, p_remote=0.1)
        b = paper_defaults(num_threads=8, runlength=10.0, p_remote=0.4)
        cost_a = kurihara_access_cost(a).effective_cost
        cost_b = kurihara_access_cost(b).effective_cost
        tol_a = network_tolerance(a).index
        tol_b = network_tolerance(b).index
        assert cost_a == pytest.approx(cost_b, rel=0.1)
        assert abs(tol_a - tol_b) > 0.2
