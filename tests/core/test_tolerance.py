"""Unit tests for the tolerance index (the paper's Section 4)."""

import pytest

from repro.core import (
    PARTIAL_THRESHOLD,
    TOLERATED_THRESHOLD,
    ToleranceZone,
    classify,
    memory_tolerance,
    network_tolerance,
    tolerance_report,
)
from repro.core.model import MMSModel
from repro.params import paper_defaults


class TestClassify:
    def test_zones(self):
        assert classify(1.0) is ToleranceZone.TOLERATED
        assert classify(0.8) is ToleranceZone.TOLERATED
        assert classify(0.79) is ToleranceZone.PARTIAL
        assert classify(0.5) is ToleranceZone.PARTIAL
        assert classify(0.49) is ToleranceZone.NOT_TOLERATED
        assert classify(0.0) is ToleranceZone.NOT_TOLERATED

    def test_thresholds_match_paper(self):
        assert TOLERATED_THRESHOLD == 0.8
        assert PARTIAL_THRESHOLD == 0.5


class TestNetworkTolerance:
    def test_defaults_tolerated(self):
        """Paper: n_t=8, p_remote=0.2, R=10 is in the tolerated zone
        (quoted tol ~0.93)."""
        res = network_tolerance(paper_defaults())
        assert res.zone is ToleranceZone.TOLERATED
        assert res.index == pytest.approx(0.93, abs=0.03)

    def test_zero_delay_ideal_removes_network(self):
        res = network_tolerance(paper_defaults())
        assert res.ideal.s_obs == 0.0
        assert res.ideal.params.arch.switch_delay == 0.0

    def test_index_at_most_one_for_product_form(self):
        """Closed-network monotonicity: adding switch demand cannot raise
        throughput, so tol_network <= 1 under the exact/BS model."""
        for overrides in ({}, {"k": 8}, {"p_remote": 0.6}, {"num_threads": 2}):
            res = network_tolerance(paper_defaults(**overrides))
            assert res.index <= 1.0 + 1e-9

    def test_saturated_network_not_tolerated(self):
        """Past IN saturation (p_remote >~ 0.3 at R=10), the zone drops."""
        res = network_tolerance(paper_defaults(p_remote=0.7, num_threads=8))
        assert res.zone is not ToleranceZone.TOLERATED

    def test_higher_runlength_tolerates_more(self):
        """Paper, Section 5: increasing R improves tol_network."""
        t10 = network_tolerance(paper_defaults(p_remote=0.4, runlength=10.0))
        t20 = network_tolerance(paper_defaults(p_remote=0.4, runlength=20.0))
        assert t20.index > t10.index

    def test_more_threads_tolerate_more(self):
        t2 = network_tolerance(paper_defaults(num_threads=2))
        t8 = network_tolerance(paper_defaults(num_threads=8))
        assert t8.index > t2.index

    def test_local_only_ideal(self):
        res = network_tolerance(paper_defaults(), ideal="local_only")
        assert res.ideal.params.workload.p_remote == 0.0
        assert res.ideal.lambda_net == 0.0

    def test_local_only_vs_zero_delay_differ(self):
        """The two ideal-system definitions are distinct measurements."""
        a = network_tolerance(paper_defaults(p_remote=0.4), ideal="zero_delay")
        b = network_tolerance(paper_defaults(p_remote=0.4), ideal="local_only")
        assert a.index != pytest.approx(b.index, rel=1e-3)

    def test_unknown_ideal(self):
        with pytest.raises(ValueError):
            network_tolerance(paper_defaults(), ideal="wishful")

    def test_reuses_precomputed_actual(self):
        params = paper_defaults()
        actual = MMSModel(params).solve()
        res = network_tolerance(params, actual=actual)
        assert res.actual is actual

    def test_float_conversion(self):
        res = network_tolerance(paper_defaults())
        assert float(res) == res.index

    def test_tiny_p_remote_tol_near_one(self):
        """Paper: for small n_t and low traffic, tol_network ~ 1."""
        res = network_tolerance(paper_defaults(p_remote=0.001, num_threads=1))
        assert res.index == pytest.approx(1.0, abs=0.01)


class TestMemoryTolerance:
    def test_zero_delay_memory_ideal(self):
        res = memory_tolerance(paper_defaults())
        assert res.ideal.params.arch.memory_latency == 0.0
        assert res.ideal.l_obs == 0.0

    def test_r_much_larger_than_l_tolerates(self):
        """Paper, Section 6: R >= 2L and n_t >= 6 puts tol_memory near 1."""
        res = memory_tolerance(paper_defaults(runlength=40.0, num_threads=8))
        assert res.index >= 0.9

    def test_large_l_not_tolerated_at_small_r(self):
        res = memory_tolerance(
            paper_defaults(runlength=2.0, memory_latency=20.0, num_threads=2)
        )
        assert res.index < 0.8

    def test_subsystem_label(self):
        assert memory_tolerance(paper_defaults()).subsystem == "memory"


class TestToleranceReport:
    def test_both_subsystems(self):
        rep = tolerance_report(paper_defaults())
        assert set(rep) == {"network", "memory"}

    def test_shares_actual_solution(self):
        rep = tolerance_report(paper_defaults())
        assert rep["network"].actual is rep["memory"].actual

    def test_up_roughly_product_of_tolerances(self):
        """Paper, Section 6: when R <~ L, U_p ~ tol_memory * tol_network."""
        rep = tolerance_report(paper_defaults())
        u_p = rep["network"].actual.processor_utilization
        prod = rep["network"].index * rep["memory"].index
        assert u_p == pytest.approx(prod, rel=0.15)
