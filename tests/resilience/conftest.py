"""Chaos-suite fixtures: fault plans are always uninstalled afterwards."""

from __future__ import annotations

import pytest

from repro import resilience


@pytest.fixture
def fault_plan():
    """Install a fault plan for one test, restoring the previous one."""
    installed = []

    def _install(plan):
        installed.append(resilience.configure(fault_plan=plan))
        return resilience.get_injector()

    yield _install
    for prev in reversed(installed):
        resilience.configure(**prev)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """No chaos test may leak an active plan into the rest of the suite."""
    yield
    assert resilience.get_injector() is None, "test leaked an active fault plan"
