"""Admission-control semantics: token bucket + CoDel-style shedding.

The load-bearing invariant is the hypothesis property: a
:class:`~repro.resilience.admission.TokenBucket` with ``rate`` tokens/s
and ``burst`` capacity never admits more than ``burst + rate * W``
requests in *any* window of length ``W`` -- for arbitrary arrival
schedules, not just the nice ones.  Everything else pins the
:class:`~repro.resilience.admission.AdmissionController` state machine
with an injected clock: the solve-time EWMA model, deadline dooming, the
sojourn-driven drop latch (enter, hysteretic exit, paced drops), and the
three health states ``/healthz`` reports.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience.admission import (
    HEALTH_STATES,
    AdmissionController,
    AdmissionDecision,
    TokenBucket,
)


class FakeClock:
    """Injectable monotonic clock the tests advance by hand."""

    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> float:
        self.t += dt
        return self.t


# --------------------------------------------------------------- TokenBucket


class TestTokenBucket:
    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(0.0, 5.0)
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(-1.0, 5.0)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(1.0, 0.5)

    def test_starts_full_then_refuses_with_eta(self):
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=lambda: 0.0)
        assert [bucket.try_acquire(now=0.0) for _ in range(3)] == [0.0] * 3
        wait = bucket.try_acquire(now=0.0)
        # empty at rate 2/s: the next token is half a second out
        assert wait == pytest.approx(0.5)

    def test_refill_is_continuous_and_capped(self):
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=lambda: 0.0)
        assert bucket.try_acquire(now=0.0) == 0.0
        assert bucket.try_acquire(now=0.0) == 0.0
        # 0.1s at 10/s refills exactly one token
        assert bucket.try_acquire(now=0.1) == 0.0
        assert bucket.try_acquire(now=0.1) > 0.0
        # a long idle stretch refills to burst, never beyond it
        assert bucket.available(now=100.0) == pytest.approx(2.0)

    def test_refusal_does_not_consume(self):
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=lambda: 0.0)
        assert bucket.try_acquire(now=0.0) == 0.0
        for _ in range(5):  # refused probes must not push the ETA out
            assert bucket.try_acquire(now=0.0) == pytest.approx(1.0)
        assert bucket.try_acquire(now=1.0) == 0.0

    @given(
        rate=st.floats(min_value=0.1, max_value=50.0),
        burst=st.floats(min_value=1.0, max_value=20.0),
        deltas=st.lists(
            st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
            min_size=1,
            max_size=60,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_never_admits_more_than_rate_times_window_plus_burst(
        self, rate, burst, deltas
    ):
        """In ANY window ``[s, s + W]`` admissions <= ``burst + rate * W``.

        This is the defining property of a token bucket (the docstring's
        contract, quoted by docs/SERVING.md): checked over every pair of
        admitted arrivals, for an arbitrary arrival schedule.
        """
        bucket = TokenBucket(rate, burst, clock=lambda: 0.0)
        t = 0.0
        admitted: list[float] = []
        for dt in deltas:
            t += dt
            if bucket.try_acquire(now=t) == 0.0:
                admitted.append(t)
        for i, start in enumerate(admitted):
            for j in range(i, len(admitted)):
                window = admitted[j] - start
                count = j - i + 1
                assert count <= burst + rate * window + 1e-6, (
                    f"{count} admitted in a {window:.3f}s window "
                    f"(rate={rate}, burst={burst})"
                )


# ------------------------------------------------------- AdmissionController


def controller(clock: FakeClock, **kw) -> AdmissionController:
    kw.setdefault("target_wait_s", 0.1)
    kw.setdefault("codel_interval_s", 0.5)
    return AdmissionController(clock=clock, **kw)


class TestControllerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(rate_limit=-1.0)
        with pytest.raises(ValueError):
            AdmissionController(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            AdmissionController(ewma_alpha=1.5)

    def test_disabled_admits_everything_and_reports_ok(self):
        clock = FakeClock()
        ctl = AdmissionController(clock=clock)  # no rate limit, no target
        for depth in (0, 10, 10_000):
            decision = ctl.check(queue_depth=depth, deadline_s=0.0)
            assert decision.admitted and decision.reason == AdmissionDecision.OK
        ctl.observe_sojourn(99.0)  # no target: the latch stays off
        assert ctl.health(queue_depth=10_000) == "ok"
        snap = ctl.snapshot()
        assert snap["sheds"] == 0 and snap["dropping"] is False

    def test_health_states_constant_matches(self):
        assert HEALTH_STATES == ("ok", "degraded", "overloaded")


class TestRateLimiting:
    def test_per_client_buckets_are_independent(self):
        clock = FakeClock()
        ctl = AdmissionController(
            rate_limit=1.0, rate_burst=2.0, clock=clock
        )
        for _ in range(2):
            assert ctl.check(client_id="alice").admitted
        refused = ctl.check(client_id="alice")
        assert not refused.admitted
        assert refused.reason == AdmissionDecision.RATE_LIMITED
        assert refused.retry_after_s > 0.0
        # bob's bucket is untouched by alice burning hers
        assert ctl.check(client_id="bob").admitted
        assert ctl.snapshot()["rate_limited"] == 1
        assert ctl.snapshot()["clients"] == 2

    def test_burst_defaults_to_rate(self):
        ctl = AdmissionController(rate_limit=7.0, clock=FakeClock())
        assert ctl.rate_burst == 7.0
        ctl = AdmissionController(rate_limit=0.4, clock=FakeClock())
        assert ctl.rate_burst == 1.0  # floor: a bucket must hold one token

    def test_client_table_evicts_stalest_at_capacity(self):
        clock = FakeClock()
        ctl = AdmissionController(
            rate_limit=1.0, rate_burst=1.0, max_clients=3, clock=clock
        )
        for name in ("a", "b", "c"):
            assert ctl.check(client_id=name).admitted
        assert not ctl.check(client_id="a").admitted  # a's bucket is empty
        # a fourth client evicts the stalest entry ("a"), whose fresh
        # replacement bucket then admits again
        assert ctl.check(client_id="d").admitted
        assert ctl.snapshot()["clients"] == 3
        assert ctl.check(client_id="a").admitted


class TestWaitEstimate:
    def test_estimate_is_depth_times_service_ewma(self):
        clock = FakeClock()
        ctl = controller(clock, initial_service_s=2e-3)
        assert ctl.estimated_wait_s(5) == pytest.approx(5 * 2e-3)
        assert ctl.estimated_wait_s(-3) == 0.0

    def test_service_time_ewma_tracks_observations(self):
        clock = FakeClock()
        ctl = controller(clock, initial_service_s=1e-3, ewma_alpha=0.5)
        ctl.observe_service_time(3e-3)  # 1 + 0.5*(3-1) = 2ms
        assert ctl.snapshot()["service_ewma_s"] == pytest.approx(2e-3)
        ctl.observe_service_time(0.0)  # non-positive samples are ignored
        ctl.observe_service_time(-1.0)
        assert ctl.snapshot()["service_ewma_s"] == pytest.approx(2e-3)

    def test_deadline_doom_sheds_without_drop_state(self):
        """An arrival whose deadline cannot survive the estimated wait is
        refused immediately, even while the latch is off."""
        clock = FakeClock()
        ctl = controller(clock, initial_service_s=10e-3)
        doomed = ctl.check(deadline_s=0.05, queue_depth=20)  # est 0.2s
        assert not doomed.admitted
        assert doomed.reason == AdmissionDecision.SHED
        assert doomed.estimated_wait_s == pytest.approx(0.2)
        assert doomed.retry_after_s == pytest.approx(0.2 - 0.05)
        # the same queue admits a patient caller (no deadline, not dropping)
        assert ctl.check(queue_depth=20).admitted
        assert ctl.snapshot()["sheds"] == 1


class TestDropLatch:
    def test_latch_needs_a_sustained_interval_of_late_sojourns(self):
        clock = FakeClock()
        ctl = controller(clock)  # target 0.1, interval 0.5
        ctl.observe_sojourn(0.3, now=0.0)
        ctl.observe_sojourn(0.3, now=0.4)  # only 0.4s above target so far
        assert not ctl.snapshot()["dropping"]
        ctl.observe_sojourn(0.3, now=0.6)  # 0.6s sustained: latch engages
        assert ctl.snapshot()["dropping"]
        assert ctl.health() == "overloaded"

    def test_one_good_sojourn_resets_the_enter_clock(self):
        clock = FakeClock()
        ctl = controller(clock)
        ctl.observe_sojourn(0.3, now=0.0)
        ctl.observe_sojourn(0.05, now=0.4)  # below target: clock resets
        ctl.observe_sojourn(0.3, now=0.5)
        ctl.observe_sojourn(0.3, now=0.9)  # 0.4s since the reset: not yet
        assert not ctl.snapshot()["dropping"]

    def test_exit_requires_a_full_interval_below_target(self):
        clock = FakeClock()
        ctl = controller(clock)
        ctl.observe_sojourn(0.3, now=0.0)
        ctl.observe_sojourn(0.3, now=0.6)
        assert ctl.snapshot()["dropping"]
        ctl.observe_sojourn(0.05, now=1.0)  # recovery starts...
        ctl.observe_sojourn(0.3, now=1.2)  # ...but a late straggler resets it
        ctl.observe_sojourn(0.05, now=1.3)
        ctl.observe_sojourn(0.05, now=1.7)  # only 0.4s below since 1.3
        assert ctl.snapshot()["dropping"]
        ctl.observe_sojourn(0.05, now=1.9)  # 0.6s sustained below: release
        assert not ctl.snapshot()["dropping"]

    def test_dropping_sheds_while_estimate_exceeds_target(self):
        clock = FakeClock()
        ctl = controller(clock, initial_service_s=10e-3)
        ctl.observe_sojourn(0.3, now=0.0)
        ctl.observe_sojourn(0.3, now=0.6)  # latched
        clock.t = 0.6
        shed = ctl.check(queue_depth=20)  # est 0.2 > target 0.1
        assert not shed.admitted and shed.reason == AdmissionDecision.SHED
        assert shed.retry_after_s == pytest.approx(0.1)  # est - target
        snap = ctl.snapshot()
        assert snap["sheds"] == 1 and snap["drop_count"] == 1

    def test_paced_drops_fire_even_when_the_model_disagrees(self):
        """CoDel's ``interval / sqrt(n)`` schedule sheds periodically in
        drop state even with the estimate below target -- the liveness
        floor for workloads whose real waits the solve-time model
        underestimates."""
        clock = FakeClock()
        ctl = controller(clock, initial_service_s=1e-6)  # est ~ 0 always
        ctl.observe_sojourn(0.3, now=0.0)
        ctl.observe_sojourn(0.3, now=0.6)
        clock.t = 0.6
        first = ctl.check(queue_depth=1)  # t >= _drop_next (armed at latch)
        assert not first.admitted and first.reason == AdmissionDecision.SHED
        # immediately after, the next drop is a full interval out
        assert ctl.check(queue_depth=1, now=0.7).admitted
        # interval/sqrt(1) = 0.5 after the first drop
        second = ctl.check(queue_depth=1, now=1.11)
        assert not second.admitted
        # then interval/sqrt(2) ~ 0.354
        assert ctl.check(queue_depth=1, now=1.2).admitted
        assert not ctl.check(queue_depth=1, now=1.47).admitted
        assert ctl.snapshot()["drop_count"] == 3

    def test_shed_retry_after_has_a_floor(self):
        clock = FakeClock()
        ctl = controller(clock, initial_service_s=1e-6)
        ctl.observe_sojourn(0.3, now=0.0)
        ctl.observe_sojourn(0.3, now=0.6)
        clock.t = 0.6
        shed = ctl.check(queue_depth=1)  # est ~ 0: the hint still backs off
        assert shed.retry_after_s == pytest.approx(0.05)


class TestHealth:
    def test_degraded_between_ok_and_overloaded(self):
        clock = FakeClock()
        ctl = controller(clock, initial_service_s=10e-3)
        assert ctl.health(queue_depth=2) == "ok"  # est 0.02 < 0.1
        assert ctl.health(queue_depth=20) == "degraded"  # est 0.2 > 0.1
        ctl.observe_sojourn(0.3, now=0.0)
        ctl.observe_sojourn(0.3, now=0.6)
        clock.t = 0.6
        assert ctl.health() == "overloaded"

    def test_recent_shedding_holds_overloaded_after_release(self):
        clock = FakeClock()
        ctl = controller(clock, initial_service_s=10e-3)
        ctl.observe_sojourn(0.3, now=0.0)
        ctl.observe_sojourn(0.3, now=0.6)
        clock.t = 0.6
        assert not ctl.check(queue_depth=20).admitted
        ctl.observe_sojourn(0.05, now=1.0)
        ctl.observe_sojourn(0.05, now=1.6)  # latch released...
        assert not ctl.snapshot()["dropping"]
        clock.t = 0.61  # ...but a shed just happened: still overloaded
        assert ctl.health() == "overloaded"
        clock.t = 2.0
        assert ctl.health(queue_depth=0) == "ok"

    def test_snapshot_keys(self):
        snap = controller(FakeClock()).snapshot()
        assert set(snap) == {
            "service_ewma_s",
            "drop_count",
            "dropping",
            "sheds",
            "rate_limited",
            "clients",
        }
