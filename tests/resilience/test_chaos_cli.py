"""Chaos through the public CLI: every fault site, sweeps still correct.

Each test arms one fault site and drives ``repro-mms sweep`` through
:func:`repro.cli.main` in-process (pool workers inherit the armed plan
through fork).  The bar everywhere: the command degrades, recovers, and its
*data* matches a clean golden run -- faults may only ever show up in the
telemetry.
"""

from __future__ import annotations

import re

import pytest

from repro.cli import main

AXES = ["--axis", "num_threads=1,2,3,4,5,6,7,8"]


def _sweep(*extra: str) -> list[str]:
    return ["sweep", *AXES, *extra]


def _measure_lines(text: str) -> list[str]:
    """The per-point data lines (everything before the [sweep] summary)."""
    return [
        line
        for line in text.splitlines()
        if line.startswith("num_threads=") and "FAILED" not in line
    ]


@pytest.fixture
def golden(capsys):
    assert main(_sweep("--backend", "serial")) == 0
    lines = _measure_lines(capsys.readouterr().out)
    assert len(lines) == 8
    return lines


class TestSolverFaults:
    def test_solve_raise_batch_degrades_and_matches_golden(
        self, golden, fault_plan, capsys
    ):
        fault_plan({"sites": {"solve.raise": {"on_nth": [1]}}})
        assert main(_sweep("--backend", "batch")) == 0
        out = capsys.readouterr().out
        assert _measure_lines(out) == golden
        assert "[degrade] batch -> serial: InjectedFault" in out

    def test_solve_nan_batch_degrades_and_matches_golden(
        self, golden, fault_plan, capsys
    ):
        fault_plan({"sites": {"solve.nan": {"on_nth": [1]}}})
        assert main(_sweep("--backend", "batch")) == 0
        out = capsys.readouterr().out
        assert _measure_lines(out) == golden
        assert "[degrade] batch -> serial: non-finite measures" in out

    def test_solve_delay_only_slows_the_run(self, golden, fault_plan, capsys):
        fault_plan({"sites": {"solve.delay": {"p": 1.0, "sleep_s": 0.005}}})
        assert main(_sweep("--backend", "serial")) == 0
        assert _measure_lines(capsys.readouterr().out) == golden


@pytest.mark.slow
class TestWorkerFaults:
    def test_worker_crash_falls_back_to_serial(self, golden, fault_plan, capsys):
        fault_plan({"seed": 5, "sites": {"worker.crash": {"on_nth": [1]}}})
        assert main(_sweep("--backend", "process", "--jobs", "2")) == 0
        out = capsys.readouterr().out
        assert _measure_lines(out) == golden
        assert "[degrade] process -> serial:" in out
        assert "serial-fallback" in out

    def test_worker_hang_times_out_then_resume_completes(
        self, golden, fault_plan, capsys, tmp_path
    ):
        manifest = tmp_path / "run.json"
        install = fault_plan
        install({"sites": {"worker.hang": {"p": 1.0, "sleep_s": 30}}})
        rc = main(
            _sweep(
                "--backend", "process", "--jobs", "2",
                "--timeout", "1", "--retries", "0",
                "--manifest", str(manifest),
                "--journal", str(manifest) + ".journal",
            )
        )
        out = capsys.readouterr().out
        assert rc == 1  # timed-out points are failures, truthfully reported
        assert out.count("FAILED: timeout") == 8
        # disarm and resume: the journal carries nothing (no point
        # completed), the sweep re-solves everything and succeeds
        install(None)
        assert main(_sweep("--resume", str(manifest))) == 0
        assert _measure_lines(capsys.readouterr().out) == golden


class TestStoreFaults:
    def test_corrupted_cache_is_quarantined_and_resolved(
        self, golden, fault_plan, capsys, tmp_path
    ):
        cache = str(tmp_path / "cache")
        install = fault_plan
        install({"sites": {"store.corrupt_record": {"on_nth": [3]}}})
        assert main(_sweep("--backend", "serial", "--cache-dir", cache)) == 0
        assert _measure_lines(capsys.readouterr().out) == golden
        install(None)
        # warm run: 7 records verify, the garbled one is quarantined,
        # re-solved, and re-persisted -- never served, never a crash
        assert main(_sweep("--backend", "serial", "--cache-dir", cache)) == 0
        out = capsys.readouterr().out
        assert _measure_lines(out) == golden
        assert re.search(r"\[integrity\] quarantined=1 index_rebuilds=[1-9]", out)
        assert "7 cached" in out
        # third run is fully warm again
        assert main(_sweep("--backend", "serial", "--cache-dir", cache)) == 0
        assert "8 cached" in capsys.readouterr().out

    def test_truncated_cache_write_recovers_the_same_way(
        self, golden, fault_plan, capsys, tmp_path
    ):
        cache = str(tmp_path / "cache")
        install = fault_plan
        install({"sites": {"store.truncate": {"on_nth": [8]}}})
        assert main(_sweep("--backend", "serial", "--cache-dir", cache)) == 0
        capsys.readouterr()
        install(None)
        assert main(_sweep("--backend", "serial", "--cache-dir", cache)) == 0
        out = capsys.readouterr().out
        assert _measure_lines(out) == golden
        assert "[integrity] quarantined=1" in out


class TestSinkFaults:
    def test_sink_io_error_never_fails_the_sweep(
        self, golden, fault_plan, capsys, tmp_path
    ):
        trace = tmp_path / "run.jsonl"
        fault_plan({"sites": {"sink.io_error": {"on_nth": [2]}}})
        with pytest.warns(RuntimeWarning, match="trace sink"):
            rc = main(_sweep("--backend", "serial", "--trace", str(trace)))
        assert rc == 0
        assert _measure_lines(capsys.readouterr().out) == golden


class TestJournalFaults:
    def test_corrupt_journal_line_is_resolved_on_resume(
        self, golden, fault_plan, capsys, tmp_path
    ):
        manifest = tmp_path / "run.json"
        install = fault_plan
        install({"sites": {"journal.corrupt_record": {"on_nth": [4]}}})
        assert main(
            _sweep("--backend", "serial",
                   "--manifest", str(manifest),
                   "--journal", str(manifest) + ".journal")
        ) == 0
        capsys.readouterr()
        install(None)
        assert main(_sweep("--resume", str(manifest))) == 0
        out = capsys.readouterr().out
        assert _measure_lines(out) == golden
        assert "replayed=7" in out


class TestCleanErrors:
    def test_bad_point_parameter_is_one_clean_line(self, capsys):
        rc = main(["solve", "--nt", "0"])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.strip() == "repro-mms: error: num_threads must be >= 1, got 0"

    def test_bad_axis_value_is_one_clean_line(self, capsys):
        rc = main(_sweep("--axis", "p_remote=1.5"))
        err = capsys.readouterr().err
        assert rc == 2
        assert err.startswith("repro-mms: error: p_remote must be in [0, 1]")

    def test_unexpected_valueerror_keeps_its_traceback(self, monkeypatch):
        """Only ParamError/JournalError are dressed up as usage errors; an
        arbitrary ValueError (a bug, e.g. from numpy or the solver) must
        propagate with its traceback instead of masquerading as exit 2."""
        from repro import cli

        def _boom(args):
            raise ValueError("boom")

        monkeypatch.setattr(cli, "_dispatch", _boom)
        with pytest.raises(ValueError, match="boom"):
            cli.main(["solve"])

    def test_mismatched_resume_is_one_clean_line(self, capsys, tmp_path):
        manifest = tmp_path / "run.json"
        assert main(
            _sweep("--backend", "serial",
                   "--manifest", str(manifest),
                   "--journal", str(manifest) + ".journal")
        ) == 0
        capsys.readouterr()
        rc = main(
            ["sweep", "--axis", "num_threads=1,2", "--backend", "serial",
             "--resume", str(manifest)]
        )
        err = capsys.readouterr().err
        assert rc == 2
        assert err.startswith("repro-mms: error: journal")
        assert "different sweep" in err
