"""The explicit degradation chain and its manifest/metrics telemetry."""

from __future__ import annotations

import pytest

from repro.obs import registry
from repro.params import paper_defaults
from repro.resilience.degrade import DEGRADATION_CHAIN, DegradationPolicy
from repro.runner import JobSpec, SweepRunner


def _specs(n=6):
    return [
        JobSpec(params=paper_defaults(num_threads=t), method="auto")
        for t in range(1, n + 1)
    ]


class TestPolicy:
    def test_chain_order(self):
        assert DEGRADATION_CHAIN == ("shm", "batch", "process", "serial")

    def test_records_structured_entries(self):
        policy = DegradationPolicy()
        policy.degrade("batch", "serial", "kernel raised", 5)
        policy.degrade("process", "serial", "pool died", 2)
        assert policy.to_list() == [
            {
                "from_mode": "batch",
                "to_mode": "serial",
                "reason": "kernel raised",
                "points": 5,
            },
            {
                "from_mode": "process",
                "to_mode": "serial",
                "reason": "pool died",
                "points": 2,
            },
        ]

    def test_upward_transition_rejected(self):
        with pytest.raises(ValueError, match="down the chain"):
            DegradationPolicy().degrade("serial", "batch", "nope", 1)

    def test_self_transition_rejected(self):
        with pytest.raises(ValueError, match="down the chain"):
            DegradationPolicy().degrade("batch", "batch", "nope", 1)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown degradation"):
            DegradationPolicy().degrade("gpu", "serial", "nope", 1)

    def test_counter_emitted(self):
        before = registry().counter("degrade.batch_to_serial").value
        DegradationPolicy().degrade("batch", "serial", "x", 1)
        assert registry().counter("degrade.batch_to_serial").value == before + 1


class TestRunnerDegradations:
    def test_clean_run_has_no_degradations(self):
        report = SweepRunner(backend="batch").run(_specs())
        assert report.ok
        assert report.manifest.degradations == []

    def test_batch_kernel_raise_degrades_to_serial(self, fault_plan):
        golden = SweepRunner(backend="serial").run(_specs()).records()
        fault_plan({"sites": {"solve.raise": {"on_nth": [1]}}})
        report = SweepRunner(backend="batch").run(_specs())
        assert report.ok
        assert report.records() == golden  # degraded run stays correct
        (entry,) = report.manifest.degradations
        assert entry["from_mode"] == "batch" and entry["to_mode"] == "serial"
        assert "InjectedFault" in entry["reason"]
        assert entry["points"] == len(_specs())
        assert report.manifest.mode == "serial"

    def test_batch_nan_poison_degrades_and_recovers(self, fault_plan):
        golden = SweepRunner(backend="serial").run(_specs()).records()
        fault_plan({"sites": {"solve.nan": {"on_nth": [1], "index": 2}}})
        report = SweepRunner(backend="batch").run(_specs())
        assert report.ok
        assert report.records() == golden
        (entry,) = report.manifest.degradations
        assert entry["reason"] == "non-finite measures in batched solve"
        # the metrics delta shows the fault actually fired
        assert report.manifest.metrics["counters"]["fault.solve.nan.fired"] >= 1

    def test_serial_nan_poison_burns_a_retry_then_recovers(self, fault_plan):
        golden = SweepRunner(backend="serial").run(_specs(3)).records()
        fault_plan({"sites": {"solve.nan": {"on_nth": [1]}}})
        report = SweepRunner(backend="serial", retries=1).run(_specs(3))
        assert report.ok
        assert report.records() == golden
        assert report.manifest.retries >= 1

    def test_nan_never_reaches_a_store(self, fault_plan, tmp_path):
        fault_plan({"sites": {"solve.nan": {"p": 1.0}}})
        report = SweepRunner(
            backend="serial", retries=0, cache_dir=str(tmp_path)
        ).run(_specs(2))
        assert not report.ok
        assert all(
            "non-finite" in r.error for r in report.results if not r.ok
        )
        # nothing poisoned was persisted
        from repro.runner.store import ResultStore

        assert len(ResultStore(tmp_path)) == 0
