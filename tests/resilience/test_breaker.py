"""The circuit breaker: unit state machine + chaos through the service.

Unit tests drive :class:`~repro.resilience.breaker.CircuitBreaker` with
an injected clock through every transition of the three-state machine
(closed -> open -> half-open -> closed/open) and pin the observability
contract (``breaker.<name>.*`` counter deltas).  The chaos test then
injects ``solve.raise`` under a live :class:`~repro.serve.SolveService`
and proves the serving behaviour the breaker exists for: failing batches
degrade to scalar (answers stay correct), the breaker opens after the
configured threshold so subsequent flushes are routed around the batch
kernel *without re-paying the failure*, and a half-open probe closes it
again once the fault clears.
"""

from __future__ import annotations

import time

import pytest

import repro
from repro.core.model import solve
from repro.obs import registry
from repro.params import paper_defaults
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import InjectedFault
from repro.serve import ServiceConfig, SolveService


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t


def breaker(clock: FakeClock, **kw) -> CircuitBreaker:
    kw.setdefault("failure_threshold", 3)
    kw.setdefault("cooldown_s", 5.0)
    return CircuitBreaker("t", clock=clock, **kw)


class TestStateMachine:
    def test_validation(self):
        for bad in (
            dict(failure_threshold=0),
            dict(cooldown_s=0.0),
            dict(probe_successes=0),
        ):
            with pytest.raises(ValueError):
                CircuitBreaker("t", **bad)

    def test_closed_allows_and_success_resets_the_streak(self):
        b = breaker(FakeClock())
        assert b.state == "closed" and b.allow()
        b.record_failure()
        b.record_failure()  # threshold-1 failures: still closed
        assert b.state == "closed"
        b.record_success()  # a success wipes the streak
        b.record_failure()
        b.record_failure()
        assert b.state == "closed"

    def test_opens_at_threshold_and_refuses(self):
        b = breaker(FakeClock())
        for _ in range(3):
            b.record_failure()
        assert b.state == "open"
        assert not b.allow()
        assert not b.allow()
        snap = b.snapshot()
        assert snap["opened"] == 1 and snap["rejected"] == 2

    def test_cooldown_moves_open_to_half_open(self):
        clock = FakeClock()
        b = breaker(clock)
        for _ in range(3):
            b.record_failure()
        clock.t = 4.99
        assert b.state == "open"
        clock.t = 5.0
        assert b.state == "half_open"

    def test_half_open_admits_exactly_one_probe_at_a_time(self):
        clock = FakeClock()
        b = breaker(clock)
        for _ in range(3):
            b.record_failure()
        clock.t = 6.0
        assert b.allow()  # the probe
        assert not b.allow()  # concurrent calls are refused while it runs
        snap = b.snapshot()
        assert snap["probes"] == 1 and snap["rejected"] == 1

    def test_probe_success_closes(self):
        clock = FakeClock()
        b = breaker(clock)
        for _ in range(3):
            b.record_failure()
        clock.t = 6.0
        assert b.allow()
        b.record_success()
        assert b.state == "closed"
        assert b.allow()
        assert b.snapshot()["closed"] == 1

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        clock = FakeClock()
        b = breaker(clock)
        for _ in range(3):
            b.record_failure()
        clock.t = 6.0
        assert b.allow()
        b.record_failure()  # one failed probe re-opens immediately
        assert b.state == "open" and not b.allow()
        clock.t = 10.0  # 4s into the NEW cooldown: still open
        assert b.state == "open"
        clock.t = 11.0
        assert b.state == "half_open"
        assert b.snapshot()["opened"] == 2

    def test_multiple_probe_successes_required_when_configured(self):
        clock = FakeClock()
        b = breaker(clock, probe_successes=2)
        for _ in range(3):
            b.record_failure()
        clock.t = 6.0
        assert b.allow()
        b.record_success()
        assert b.state == "half_open"  # one of two
        assert b.allow()  # the slot frees for the next probe
        b.record_success()
        assert b.state == "closed"

    def test_counters_reach_the_obs_registry(self):
        reg = registry()

        def val(event: str) -> float:
            return reg.counter(f"breaker.cnt.{event}").value

        base = {e: val(e) for e in ("opened", "closed", "rejected", "probes")}
        clock = FakeClock()
        b = CircuitBreaker(
            "cnt", failure_threshold=1, cooldown_s=1.0, clock=clock
        )
        b.record_failure()
        assert not b.allow()
        clock.t = 2.0
        assert b.allow()
        b.record_success()
        assert val("opened") == base["opened"] + 1
        assert val("rejected") == base["rejected"] + 1
        assert val("probes") == base["probes"] + 1
        assert val("closed") == base["closed"] + 1


# ---------------------------------------------------------- service chaos

#: wide linger so each round of submissions coalesces into one batch
COALESCE = dict(
    max_batch=32,
    min_linger_s=0.02,
    max_linger_s=0.1,
    adaptive=False,
    memory_cache=0,
)


def _round(svc: SolveService, base: float):
    """Submit 4 distinct symmetric points together; outcomes may be the
    result *or* the exception the future carried (``solve.raise`` poisons
    the scalar fallback too -- scalar ``solve_symmetric`` is the batched
    kernel at width 1)."""
    points = [paper_defaults(p_remote=base + 0.001 * i) for i in range(4)]
    futures = [svc.submit(p) for p in points]
    outcomes = []
    for future in futures:
        try:
            outcomes.append(future.result(timeout=30))
        except Exception as exc:  # noqa: BLE001 - the outcome under test
            outcomes.append(exc)
    return points, outcomes


def _drive_until(svc: SolveService, pred, base: float, max_rounds: int = 8):
    """Rounds of traffic until ``pred(stats)`` holds; returns the last
    round's (points, outcomes).  Coalescing splits can spread a round
    over several flushes, so how many rounds feed the breaker to a given
    state is timing-dependent -- the *destination* state is not."""
    for round_no in range(max_rounds):
        points, outcomes = _round(svc, base + 0.01 * round_no)
        if pred(svc.stats()):
            return points, outcomes
    raise AssertionError(f"breaker never reached the expected state: "
                         f"{svc.stats()['breaker']}")


class TestBreakerUnderInjectedFaults:
    def test_open_shed_and_half_open_recovery(self, fault_plan):
        """solve.raise through the live service: degrade, open, recover."""
        fault_plan({"sites": {"solve.raise": {"p": 1.0}}})
        cfg = ServiceConfig(
            breaker_threshold=2, breaker_cooldown_s=1.0, **COALESCE
        )
        with SolveService(cfg) as svc:
            # failing batch flushes degrade and feed the breaker until the
            # consecutive-failure threshold trips it open
            _, outcomes = _drive_until(
                svc, lambda s: s["breaker"]["state"] == "open", base=0.01
            )
            assert all(isinstance(o, InjectedFault) for o in outcomes)
            stats = svc.stats()
            assert stats["degraded_batches"] >= cfg.breaker_threshold
            assert stats["breaker"]["opened"] == 1
            degraded_before = stats["degraded_batches"]

            # while open (cooldown not elapsed): flushes route straight to
            # scalar -- the batch failure is NOT re-paid (degraded_batches
            # frozen) and every refusal is counted
            _round(svc, 0.30)
            stats = svc.stats()
            assert stats["degraded_batches"] == degraded_before
            assert stats["breaker"]["rejected"] >= 1

            # fault cleared + cooldown elapsed: the next batchable flush
            # is the half-open probe; its success closes the breaker and
            # answers flow batched and bitwise-correct again
            repro.configure(fault_plan=None)
            time.sleep(cfg.breaker_cooldown_s + 0.05)
            points, outcomes = _drive_until(
                svc, lambda s: s["breaker"]["state"] == "closed", base=0.50
            )
            for p, r in zip(points, outcomes):
                assert not isinstance(r, Exception), r
                assert r.perf.to_dict() == solve(p).to_dict()
            snap = svc.stats()["breaker"]
            assert snap["closed"] == 1 and snap["probes"] == 1
            assert svc.stats()["degraded_batches"] == degraded_before

    def test_failed_probe_reopens_through_the_service(self, fault_plan):
        fault_plan({"sites": {"solve.raise": {"p": 1.0}}})
        cfg = ServiceConfig(
            breaker_threshold=1, breaker_cooldown_s=0.2, **COALESCE
        )
        with SolveService(cfg) as svc:
            _drive_until(
                svc, lambda s: s["breaker"]["state"] == "open", base=0.01
            )
            assert svc.stats()["breaker"]["opened"] == 1
            time.sleep(cfg.breaker_cooldown_s + 0.05)
            # the fault is still active: the half-open probe batch fails
            # and slams the breaker shut again, restarting the cooldown
            _drive_until(
                svc,
                lambda s: s["breaker"]["opened"] >= 2,
                base=0.30,
                max_rounds=4,
            )
            assert svc.stats()["breaker"]["state"] == "open"
