"""The fault-injection layer itself: plans, schedules, determinism."""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro import resilience
from repro.obs import registry
from repro.resilience.faults import (
    FAULT_SITES,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    fault_point,
    garble,
)


class TestFaultSpec:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(site="solver.explode", p=0.5)

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match=r"p must be in \[0, 1\]"):
            FaultSpec(site="solve.raise", p=1.5)

    def test_p_and_on_nth_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            FaultSpec(site="solve.raise", p=0.5, on_nth=(1,))

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="needs p > 0 or an on_nth"):
            FaultSpec(site="solve.raise")

    def test_on_nth_must_be_positive_ints(self):
        with pytest.raises(ValueError, match="on_nth"):
            FaultSpec(site="solve.raise", on_nth=(0,))

    def test_max_fires_positive(self):
        with pytest.raises(ValueError, match="max_fires"):
            FaultSpec(site="solve.raise", p=0.5, max_fires=0)

    def test_from_dict_routes_unknown_keys_to_args(self):
        spec = FaultSpec.from_dict("worker.hang", {"on_nth": 3, "sleep_s": 1.5})
        assert spec.on_nth == (3,)
        assert spec.args == {"sleep_s": 1.5}

    def test_roundtrip(self):
        plan = FaultPlan.from_dict(
            {"seed": 9, "sites": {"solve.nan": {"on_nth": [2, 4], "index": 1}}}
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan


class TestSchedules:
    def test_on_nth_fires_exactly_there(self):
        inj = FaultInjector(
            FaultPlan.from_dict({"sites": {"solve.raise": {"on_nth": [2, 4]}}})
        )
        fired = [inj.should_fire("solve.raise") is not None for _ in range(6)]
        assert fired == [False, True, False, True, False, False]

    def test_max_fires_caps_probability_schedule(self):
        inj = FaultInjector(
            FaultPlan.from_dict(
                {"sites": {"solve.raise": {"p": 1.0, "max_fires": 2}}}
            )
        )
        fired = sum(inj.should_fire("solve.raise") is not None for _ in range(10))
        assert fired == 2

    def test_probability_schedule_is_seed_deterministic(self):
        def trace(seed):
            inj = FaultInjector(
                FaultPlan.from_dict(
                    {"seed": seed, "sites": {"solve.raise": {"p": 0.5}}}
                )
            )
            return [inj.should_fire("solve.raise") is not None for _ in range(64)]

        assert trace(7) == trace(7)
        assert trace(7) != trace(8)  # astronomically unlikely to collide

    def test_unplanned_site_never_advances_counters(self):
        inj = FaultInjector(
            FaultPlan.from_dict({"sites": {"solve.raise": {"on_nth": [1]}}})
        )
        for _ in range(5):
            assert inj.should_fire("store.truncate") is None
        assert "store.truncate" not in inj.calls

    def test_fire_increments_metric(self):
        inj = FaultInjector(
            FaultPlan.from_dict({"sites": {"solve.raise": {"on_nth": [1]}}})
        )
        before = registry().counter("fault.solve.raise.fired").value
        assert inj.should_fire("solve.raise") is not None
        assert registry().counter("fault.solve.raise.fired").value == before + 1


class TestModuleAPI:
    def test_disabled_fast_path_returns_none(self):
        assert resilience.get_injector() is None
        for site in FAULT_SITES:
            assert fault_point(site) is None

    def test_configure_installs_and_restores(self, fault_plan):
        fault_plan({"sites": {"solve.raise": {"on_nth": [1]}}})
        assert fault_point("solve.raise") is not None
        assert fault_point("solve.raise") is None  # call 2: schedule exhausted

    def test_plan_from_file(self, fault_plan, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"sites": {"solve.nan": {"p": 1.0}}}))
        inj = fault_plan(str(path))
        assert inj.plan.sites["solve.nan"].p == 1.0

    def test_malformed_env_plan_warns_and_disables(self):
        out = subprocess.run(
            [sys.executable, "-W", "error::RuntimeWarning", "-c",
             "import repro.resilience"],
            env={"PATH": "/usr/bin:/bin", "PYTHONPATH": "src",
                 "REPRO_FAULT_PLAN": "{not json"},
            capture_output=True, text=True, cwd="/root/repo",
        )
        assert out.returncode != 0
        assert "malformed REPRO_FAULT_PLAN" in out.stderr

    def test_env_plan_activates_in_fresh_process(self):
        code = (
            "from repro.resilience.faults import fault_point, get_injector\n"
            "assert get_injector() is not None\n"
            "assert fault_point('solve.raise') is not None\n"
            "print('armed')\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            env={"PATH": "/usr/bin:/bin", "PYTHONPATH": "src",
                 "REPRO_FAULT_PLAN":
                     '{"sites": {"solve.raise": {"on_nth": [1]}}}'},
            capture_output=True, text=True, cwd="/root/repo",
        )
        assert out.returncode == 0, out.stderr
        assert "armed" in out.stdout


class TestGarble:
    def test_same_length_but_unparseable(self):
        line = json.dumps({"key": "k", "value": [1, 2, 3]})
        bad = garble(line)
        assert len(bad) == len(line)
        assert bad != line
        with pytest.raises(ValueError):
            json.loads(bad)
