"""Acceptance: SIGKILL a sweep mid-run, resume it, get bitwise-equal records.

The victim sweep runs as a real ``python -m repro sweep`` subprocess with a
``solve.delay`` fault plan pacing the points (so the kill reliably lands
mid-sweep), a journal, and a manifest path.  The test polls the journal and
SIGKILLs the process after a few points have been durably logged -- the
hardest crash there is, no atexit, no flush -- then resumes through the
public CLI and compares the per-point record lines byte for byte against an
uninterrupted golden run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

# whole-module: every test here drives a real subprocess sweep and SIGKILLs it
pytestmark = pytest.mark.slow

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

SWEEP_ARGS = [
    "sweep",
    "--backend", "serial",
    "--axis", "num_threads=1,2,3,4,5,6,7,8",
    "--axis", "p_remote=0.2,0.4",
]


def _env(fault_plan: dict | None = None) -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    env.pop("REPRO_FAULT_PLAN", None)
    env.pop("REPRO_TRACE", None)
    env.pop("REPRO_CACHE_DIR", None)
    if fault_plan is not None:
        env["REPRO_FAULT_PLAN"] = json.dumps(fault_plan)
    return env


def _run_cli(args, env, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env, cwd=REPO, capture_output=True, text=True, **kwargs,
    )


def _journal_points(path) -> int:
    if not os.path.exists(path):
        return 0
    with open(path, "r", encoding="utf-8") as fh:
        return sum(1 for line in fh if '"kind":"point"' in line)


class TestSigkillResume:
    def test_killed_sweep_resumes_bitwise_identical(self, tmp_path):
        golden = tmp_path / "golden.jsonl"
        out = _run_cli(
            SWEEP_ARGS + ["--out", str(golden)], _env(), timeout=300
        )
        assert out.returncode == 0, out.stderr

        manifest = tmp_path / "run.json"
        journal = tmp_path / "run.json.journal"
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro", *SWEEP_ARGS,
             "--manifest", str(manifest), "--journal", str(journal)],
            env=_env({"sites": {"solve.delay": {"p": 1.0, "sleep_s": 0.25}}}),
            cwd=REPO,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 120
            while _journal_points(journal) < 3:
                if victim.poll() is not None:
                    pytest.fail("victim sweep finished before it could be killed")
                if time.monotonic() > deadline:
                    pytest.fail("journal never reached 3 points")
                time.sleep(0.02)
            os.kill(victim.pid, signal.SIGKILL)
            victim.wait(timeout=30)
        finally:
            if victim.poll() is None:
                victim.kill()
        assert victim.returncode == -signal.SIGKILL

        survived = _journal_points(journal)
        assert survived >= 3
        assert not manifest.exists()  # died long before the manifest write

        resumed_out = tmp_path / "resumed.jsonl"
        out = _run_cli(
            SWEEP_ARGS
            + ["--resume", str(manifest), "--out", str(resumed_out)],
            _env(),
            timeout=300,
        )
        assert out.returncode == 0, out.stderr
        assert f"[journal] path={journal}" in out.stdout

        # the acceptance bar: per-point records, byte for byte
        assert resumed_out.read_bytes() == golden.read_bytes()

        data = json.loads(manifest.read_text())
        assert data["resumed"] is True
        assert data["journal_hits"] >= survived
        assert data["journal_hits"] + data["solved"] == data["unique_points"]
        assert data["failures"] == 0

    def test_resume_of_a_completed_sweep_solves_nothing(self, tmp_path):
        manifest = tmp_path / "run.json"
        out = _run_cli(
            SWEEP_ARGS + ["--manifest", str(manifest),
                          "--journal", str(manifest) + ".journal"],
            _env(), timeout=300,
        )
        assert out.returncode == 0, out.stderr
        out = _run_cli(
            SWEEP_ARGS + ["--resume", str(manifest)], _env(), timeout=300
        )
        assert out.returncode == 0, out.stderr
        data = json.loads(manifest.read_text())
        assert data["solved"] == 0
        assert data["journal_hits"] == data["unique_points"] == 16
