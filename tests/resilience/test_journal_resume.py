"""Sweep journals: durable appends, verified replay, resumed-run equality."""

from __future__ import annotations

import json

import pytest

from repro.params import paper_defaults
from repro.resilience.journal import JournalError, SweepJournal, sweep_signature
from repro.runner import JobSpec, SweepRunner


def _specs(n=6):
    return [
        JobSpec(params=paper_defaults(num_threads=t), method="auto")
        for t in range(1, n + 1)
    ]


class TestJournalFile:
    def test_create_append_resume_roundtrip(self, tmp_path):
        path = tmp_path / "sweep.journal"
        sig = sweep_signature(["a", "b"], "2")
        with SweepJournal.create(path, sig, total=2) as journal:
            journal.append("a", {"perf": {"U_p": 0.5}})
            journal.append("a", {"perf": {"U_p": 0.9}})  # idempotent: ignored
            journal.append("b", {"perf": {"U_p": 0.7}})
        resumed, replay = SweepJournal.resume(path, sig, total=2)
        resumed.close()
        assert replay == {"a": {"perf": {"U_p": 0.5}}, "b": {"perf": {"U_p": 0.7}}}
        assert "a" in resumed and len(resumed) == 2

    def test_missing_file_degrades_to_create(self, tmp_path):
        journal, replay = SweepJournal.resume(
            tmp_path / "fresh.journal", sweep_signature(["a"], "2"), total=1
        )
        journal.close()
        assert replay == {}

    def test_signature_mismatch_refuses_resume(self, tmp_path):
        path = tmp_path / "sweep.journal"
        SweepJournal.create(path, sweep_signature(["a"], "2"), total=1).close()
        with pytest.raises(JournalError, match="different sweep"):
            SweepJournal.resume(path, sweep_signature(["b"], "2"), total=1)

    def test_solver_version_changes_the_signature(self):
        assert sweep_signature(["a"], "2") != sweep_signature(["a"], "3")

    def test_corrupt_header_raises(self, tmp_path):
        path = tmp_path / "sweep.journal"
        path.write_text("{broken\n")
        with pytest.raises(JournalError, match="corrupt header"):
            SweepJournal.resume(path, sweep_signature(["a"], "2"), total=1)

    def test_garbled_and_truncated_lines_are_dropped(self, tmp_path):
        path = tmp_path / "sweep.journal"
        sig = sweep_signature(["a", "b", "c"], "2")
        with SweepJournal.create(path, sig, total=3) as journal:
            journal.append("a", {"perf": {"U_p": 0.1}})
            journal.append("b", {"perf": {"U_p": 0.2}})
            journal.append("c", {"perf": {"U_p": 0.3}})
        lines = path.read_text().splitlines()
        lines[2] = lines[2][: len(lines[2]) // 2] + "#garbled#"
        lines[3] = lines[3][:10]  # torn final write
        path.write_text("\n".join(lines) + "\n")
        resumed, replay = SweepJournal.resume(path, sig, total=3)
        resumed.close()
        assert set(replay) == {"a"}
        assert resumed.dropped == 2

    def test_torn_tail_does_not_swallow_post_resume_appends(self, tmp_path):
        """A run killed mid-append leaves a newline-less partial line;
        resume must terminate it so the first record appended afterwards
        is not concatenated onto it (which would corrupt both and lose
        more than the one in-flight point)."""
        path = tmp_path / "sweep.journal"
        sig = sweep_signature(["a", "b"], "2")
        with SweepJournal.create(path, sig, total=2) as journal:
            journal.append("a", {"perf": {"U_p": 0.1}})
        with open(path, "ab") as fh:  # crash mid-append: half a line, no \n
            fh.write(b'{"kind": "point", "key": "b", "rec')
        resumed, replay = SweepJournal.resume(path, sig, total=2)
        assert set(replay) == {"a"} and resumed.dropped == 1
        resumed.append("b", {"perf": {"U_p": 0.2}})  # the re-solved point
        resumed.close()
        again, replay = SweepJournal.resume(path, sig, total=2)
        again.close()
        assert replay == {"a": {"perf": {"U_p": 0.1}}, "b": {"perf": {"U_p": 0.2}}}
        assert again.dropped == 1  # only the torn tail, not a merged pair

    def test_journal_corrupt_record_fault_site(self, tmp_path, fault_plan):
        fault_plan({"sites": {"journal.corrupt_record": {"on_nth": [1]}}})
        path = tmp_path / "sweep.journal"
        sig = sweep_signature(["a", "b"], "2")
        with SweepJournal.create(path, sig, total=2) as journal:
            journal.append("a", {"perf": {"U_p": 0.1}})
            journal.append("b", {"perf": {"U_p": 0.2}})
        resumed, replay = SweepJournal.resume(path, sig, total=2)
        resumed.close()
        assert set(replay) == {"b"}
        assert resumed.dropped == 1


class TestRunnerIntegration:
    def test_journaled_run_then_resume_is_bitwise_equal(self, tmp_path):
        specs = _specs()
        golden = SweepRunner(backend="serial").run(specs).records()

        journal = tmp_path / "sweep.journal"
        first = SweepRunner(backend="serial", journal=journal).run(specs)
        assert first.ok and journal.exists()
        assert first.manifest.journal_path == str(journal)
        assert first.manifest.journal_hits == 0 and not first.manifest.resumed
        assert "journal" in first.manifest.stages

        resumed = SweepRunner(backend="serial", journal=journal, resume=True).run(
            specs
        )
        assert resumed.ok
        assert resumed.manifest.resumed
        assert resumed.manifest.journal_hits == len(specs)
        assert resumed.manifest.solved == 0
        assert resumed.records() == golden == first.records()

    def test_partial_journal_resumes_only_the_remainder(self, tmp_path):
        specs = _specs()
        journal = tmp_path / "sweep.journal"
        full = SweepRunner(backend="serial", journal=journal).run(specs)
        assert full.ok
        # keep the header and the first three point lines: a sweep killed
        # mid-run leaves exactly this shape behind
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:4]) + "\n")

        resumed = SweepRunner(backend="serial", journal=journal, resume=True).run(
            specs
        )
        assert resumed.ok
        assert resumed.manifest.journal_hits == 3
        assert resumed.manifest.solved == len(specs) - 3
        assert resumed.records() == full.records()

    def test_resume_against_a_different_sweep_refuses(self, tmp_path):
        journal = tmp_path / "sweep.journal"
        assert SweepRunner(backend="serial", journal=journal).run(_specs(3)).ok
        with pytest.raises(JournalError, match="different sweep"):
            SweepRunner(backend="serial", journal=journal, resume=True).run(
                _specs(4)
            )

    def test_unjournaled_runs_keep_their_stage_set(self):
        report = SweepRunner(backend="serial").run(_specs(2))
        assert set(report.manifest.stages) == {
            "spec_hash", "cache_lookup", "solve", "store_write", "assemble",
        }
        assert report.manifest.journal_path is None

    def test_journal_plus_store_replays_before_cache(self, tmp_path):
        specs = _specs(4)
        journal = tmp_path / "sweep.journal"
        store_dir = tmp_path / "cache"
        first = SweepRunner(
            backend="serial", cache_dir=str(store_dir), journal=journal
        ).run(specs)
        assert first.ok
        resumed = SweepRunner(
            backend="serial",
            cache_dir=str(store_dir),
            journal=journal,
            resume=True,
        ).run(specs)
        # journal replay wins over the store: hits are journal hits
        assert resumed.manifest.journal_hits == 4
        assert resumed.manifest.cache_hits == 0
        assert resumed.records() == first.records()

    def test_journal_lines_verify(self, tmp_path):
        from repro.resilience.integrity import record_digest

        journal = tmp_path / "sweep.journal"
        SweepRunner(backend="serial", journal=journal).run(_specs(3))
        lines = [json.loads(line) for line in journal.read_text().splitlines()]
        assert lines[0]["kind"] == "journal"
        for entry in lines[1:]:
            sha = entry.pop("sha256")
            assert entry["kind"] == "point"
            assert sha == record_digest(entry)
