"""Cache integrity: checksummed records, quarantine, recovery, migration."""

from __future__ import annotations

import json

from repro.resilience.integrity import canonical_json, finite_measures, record_digest
from repro.runner.store import ResultStore


def _fill(store: ResultStore, n: int = 4) -> None:
    for i in range(n):
        store.put(f"key-{i}", {"perf": {"U_p": 0.25 * i}, "elapsed": 0.0})
    store.flush()


class TestIntegrityPrimitives:
    def test_digest_is_order_independent(self):
        assert record_digest({"a": 1, "b": 2}) == record_digest({"b": 2, "a": 1})

    def test_canonical_json_rejects_nan(self):
        import pytest

        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})

    def test_finite_measures(self):
        assert finite_measures({"a": [1, 2.5, {"b": 0}], "s": "x", "n": None})
        assert not finite_measures({"a": [1, float("nan")]})
        assert not finite_measures({"a": {"b": float("inf")}})
        assert finite_measures(True)


class TestChecksummedRecords:
    def test_every_line_carries_a_verifying_sha(self, tmp_path):
        store = ResultStore(tmp_path)
        _fill(store)
        for line in (tmp_path / "results.jsonl").read_text().splitlines():
            rec = json.loads(line)
            sha = rec.pop("sha256")
            assert sha == record_digest(rec)

    def test_verified_read_roundtrips(self, tmp_path):
        store = ResultStore(tmp_path)
        _fill(store)
        rec = ResultStore(tmp_path).get("key-2")
        assert rec["perf"] == {"U_p": 0.5}
        assert "sha256" not in rec  # integrity plumbing stays internal


class TestCorruptionRecovery:
    def _corrupt_line(self, tmp_path, index: int) -> None:
        path = tmp_path / "results.jsonl"
        lines = path.read_text().splitlines()
        bad = lines[index]
        mid = len(bad) // 2
        lines[index] = bad[:mid] + "########" + bad[mid + 8 :]
        path.write_text("\n".join(lines) + "\n")

    def test_corrupt_record_is_quarantined_not_served(self, tmp_path):
        store = ResultStore(tmp_path)
        _fill(store)
        self._corrupt_line(tmp_path, 1)
        # same index (size unchanged): corruption is caught on read
        reopened = ResultStore(tmp_path)
        assert reopened.get("key-1") is None  # miss, not garbage, not a crash
        assert reopened.get("key-0")["perf"] == {"U_p": 0.0}
        assert reopened.get("key-3")["perf"] == {"U_p": 0.75}
        assert reopened.quarantined == 1
        assert reopened.index_rebuilds == 1
        quarantine = (tmp_path / "results.jsonl.quarantine").read_text()
        assert "########" in quarantine

    def test_truncated_tail_dropped_and_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        _fill(store)
        path = tmp_path / "results.jsonl"
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 20])  # torn final write
        reopened = ResultStore(tmp_path)  # size mismatch -> recovery scan
        assert reopened.get("key-3") is None
        assert len(reopened) == 3
        assert reopened.quarantined == 1

    def test_resolve_after_quarantine_repopulates(self, tmp_path):
        store = ResultStore(tmp_path)
        _fill(store)
        self._corrupt_line(tmp_path, 2)
        reopened = ResultStore(tmp_path)
        assert reopened.get("key-2") is None
        reopened.put("key-2", {"perf": {"U_p": 0.2}, "elapsed": 0.0})
        reopened.flush()
        assert ResultStore(tmp_path).get("key-2")["perf"] == {"U_p": 0.2}

    def test_legacy_records_without_sha_are_migrated(self, tmp_path):
        store = ResultStore(tmp_path)
        _fill(store, 2)
        # a record written by the pre-checksum format: no sha256 field
        legacy = canonical_json(
            {
                "key": "legacy",
                "solver_version": store.solver_version,
                "perf": {"U_p": 0.9},
                "elapsed": 0.0,
            }
        )
        with open(tmp_path / "results.jsonl", "a") as fh:
            fh.write(legacy + "\n")
        reopened = ResultStore(tmp_path)  # size mismatch -> recovery + migration
        assert reopened.get("legacy")["perf"] == {"U_p": 0.9}
        assert reopened.quarantined == 0
        migrated = [
            json.loads(line)
            for line in (tmp_path / "results.jsonl").read_text().splitlines()
        ]
        assert all("sha256" in rec for rec in migrated)

    def test_keyless_record_is_quarantined_not_indexed_as_none(self, tmp_path):
        """A checksum-valid record with no 'key' field is unaddressable --
        recovery must quarantine it, not index it under the string "None"."""
        store = ResultStore(tmp_path)
        _fill(store, 2)
        keyless = {
            "solver_version": store.solver_version,
            "perf": {"U_p": 0.9},
            "elapsed": 0.0,
        }
        with open(tmp_path / "results.jsonl", "a") as fh:
            fh.write(canonical_json({**keyless, "sha256": record_digest(keyless)}) + "\n")
        reopened = ResultStore(tmp_path)  # size mismatch -> recovery scan
        assert "None" not in reopened
        assert len(reopened) == 2
        assert reopened.quarantined == 1
        assert '"U_p":0.9' in (tmp_path / "results.jsonl.quarantine").read_text()

    def test_stats_surface_integrity_counters(self, tmp_path):
        store = ResultStore(tmp_path)
        _fill(store)
        self._corrupt_line(tmp_path, 0)
        reopened = ResultStore(tmp_path)
        reopened.get("key-0")
        stats = reopened.stats()
        assert stats["quarantined"] == 1
        assert stats["index_rebuilds"] == 1


class TestStoreFaultSites:
    def test_store_corrupt_record_site_garbles_the_write(
        self, tmp_path, fault_plan
    ):
        fault_plan({"sites": {"store.corrupt_record": {"on_nth": [2]}}})
        store = ResultStore(tmp_path)
        _fill(store, 3)
        reopened = ResultStore(tmp_path)
        served = [reopened.get(f"key-{i}") for i in range(3)]
        assert served[0] is not None and served[2] is not None
        assert served[1] is None
        assert reopened.quarantined == 1

    def test_store_truncate_site_tears_the_write(self, tmp_path, fault_plan):
        fault_plan({"sites": {"store.truncate": {"on_nth": [3]}}})
        store = ResultStore(tmp_path)
        _fill(store, 3)
        reopened = ResultStore(tmp_path)
        assert reopened.get("key-0") is not None
        assert reopened.get("key-1") is not None
        assert reopened.get("key-2") is None
        assert reopened.quarantined == 1
