"""Unit tests for table/series/surface text rendering."""

import numpy as np

from repro.analysis import format_series, format_surface, format_table


class TestFormatTable:
    def test_basic(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "2.500" in out
        assert "0.125" in out

    def test_title(self):
        out = format_table(["x"], [[1]], title="hello")
        assert out.splitlines()[0] == "hello"

    def test_alignment(self):
        out = format_table(["col"], [[1], [100]])
        rows = out.splitlines()[2:]
        assert all(len(r) == len(rows[0]) for r in rows)

    def test_precision(self):
        out = format_table(["x"], [[1.23456]], precision=1)
        assert "1.2" in out and "1.23" not in out

    def test_nan(self):
        out = format_table(["x"], [[float("nan")]])
        assert "nan" in out

    def test_strings_pass_through(self):
        out = format_table(["zone"], [["tolerated"]])
        assert "tolerated" in out


class TestFormatSurface:
    def test_header_contains_axes(self):
        vals = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = format_surface("n_t", "p", [1, 2], [0.1, 0.2], vals)
        assert "n_t\\p" in out
        assert "4.000" in out

    def test_row_per_x(self):
        vals = np.zeros((3, 2))
        out = format_surface("x", "y", [1, 2, 3], [0.1, 0.2], vals)
        assert len(out.splitlines()) == 5


class TestFormatSeries:
    def test_columns(self):
        out = format_series(
            "n", [1, 2], {"a": [0.1, 0.2], "b": [0.3, 0.4]}, precision=2
        )
        header = out.splitlines()[0]
        assert "a" in header and "b" in header
        assert "0.40" in out
