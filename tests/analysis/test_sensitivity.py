"""Tests for the parameter-sensitivity (elasticity) analysis."""

import pytest

from repro.analysis import sensitivities
from repro.core import memory_tolerance, network_tolerance
from repro.params import paper_defaults


class TestSensitivities:
    @pytest.fixture(scope="class")
    def default_report(self):
        return sensitivities(paper_defaults())

    def test_runlength_helps(self, default_report):
        assert default_report["runlength"].elasticity > 0

    def test_latencies_hurt(self, default_report):
        assert default_report["memory_latency"].elasticity < 0
        assert default_report["switch_delay"].elasticity < 0
        assert default_report["p_remote"].elasticity < 0

    def test_locality_helps(self, default_report):
        """Lower p_sw = more locality = more U_p, so elasticity is negative."""
        assert default_report["p_sw"].elasticity < 0

    def test_ranked_order(self, default_report):
        ranked = default_report.ranked()
        mags = [abs(s.elasticity) for s in ranked]
        assert mags == sorted(mags, reverse=True)

    def test_direction_labels(self, default_report):
        assert default_report["runlength"].direction == "up"
        assert default_report["memory_latency"].direction == "down"

    def test_unknown_parameter(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            sensitivities(paper_defaults(), parameters=("cache_size",))

    def test_unknown_measure(self):
        with pytest.raises(ValueError, match="unknown measure"):
            sensitivities(paper_defaults(), measure="ipc")

    def test_zero_valued_parameter_skipped(self):
        rep = sensitivities(
            paper_defaults(context_switch=0.0),
            parameters=("context_switch", "runlength"),
        )
        names = [s.parameter for s in rep.entries]
        assert "context_switch" not in names
        assert "runlength" in names

    def test_render(self, default_report):
        text = default_report.render()
        assert "elasticity" in text
        assert "runlength" in text

    def test_getitem_unknown(self, default_report):
        with pytest.raises(KeyError):
            default_report["bogus"]


class TestAgreesWithToleranceDiagnosis:
    """The paper's use case: the sensitivity ranking points at the same
    bottleneck the tolerance indices identify."""

    def test_memory_bound_point(self):
        params = paper_defaults()  # tol_mem < tol_net here
        rep = sensitivities(params)
        tol_net = network_tolerance(params).index
        tol_mem = memory_tolerance(params).index
        assert tol_mem < tol_net
        assert abs(rep["memory_latency"].elasticity) > abs(
            rep["switch_delay"].elasticity
        )

    def test_network_bound_point(self):
        params = paper_defaults(p_remote=0.6)
        rep = sensitivities(params)
        tol_net = network_tolerance(params).index
        tol_mem = memory_tolerance(params).index
        assert tol_net < tol_mem
        assert abs(rep["switch_delay"].elasticity) > abs(
            rep["memory_latency"].elasticity
        )

    def test_elasticities_grow_with_congestion(self):
        calm = sensitivities(paper_defaults(p_remote=0.1))
        hot = sensitivities(paper_defaults(p_remote=0.6))
        assert abs(hot["switch_delay"].elasticity) > abs(
            calm["switch_delay"].elasticity
        )

    def test_lambda_net_measure(self):
        """Below saturation lambda_net rises ~linearly with p_remote."""
        rep = sensitivities(
            paper_defaults(p_remote=0.05), measure="lambda_net"
        )
        assert rep["p_remote"].elasticity == pytest.approx(1.0, abs=0.15)
