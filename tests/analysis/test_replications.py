"""Tests for independent-replication statistics."""

import pytest

from repro.analysis import replicate
from repro.core import MMSModel
from repro.params import paper_defaults


@pytest.fixture(scope="module")
def result():
    return replicate(
        paper_defaults(k=2, num_threads=3), replications=4, duration=8_000.0
    )


class TestReplicate:
    def test_all_measures_present(self, result):
        assert set(result.measures) == {
            "U_p",
            "lambda_net",
            "S_obs",
            "L_obs",
            "access_rate",
        }

    def test_value_count(self, result):
        assert len(result["U_p"].values) == 4
        assert result.replications == 4

    def test_ci_covers_model_prediction(self, result):
        """The analytical model lands inside (or within 2 half-widths of)
        the replication CI for the headline measures."""
        perf = MMSModel(paper_defaults(k=2, num_threads=3)).solve()
        for name in ("U_p", "lambda_net"):
            m = result[name]
            assert abs(perf.summary()[name] - m.mean) <= max(
                2 * m.halfwidth, 0.03 * abs(m.mean)
            )

    def test_halfwidth_positive_finite(self, result):
        for m in result.measures.values():
            assert 0 <= m.halfwidth < float("inf")

    def test_relative_halfwidth(self, result):
        m = result["U_p"]
        assert m.relative_halfwidth == pytest.approx(
            m.halfwidth / m.mean
        )

    def test_covers(self, result):
        m = result["U_p"]
        assert m.covers(m.mean)
        assert not m.covers(m.mean + 10 * (m.halfwidth + 0.1))

    def test_render(self, result):
        text = result.render()
        assert "replications" in text
        assert "U_p" in text

    def test_requires_two_replications(self):
        with pytest.raises(ValueError):
            replicate(paper_defaults(k=2), replications=1)

    def test_kwargs_forwarded(self):
        res = replicate(
            paper_defaults(k=2, num_threads=2),
            replications=2,
            duration=3_000.0,
            local_priority=True,
        )
        assert res["U_p"].mean > 0

    def test_distinct_seeds_distinct_values(self, result):
        vals = result["access_rate"].values
        assert len(set(vals)) > 1
