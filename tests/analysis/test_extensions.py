"""Tests for the extension experiment generators (small/fast settings)."""

import pytest

from repro.analysis import (
    ext_context_switch,
    ext_finite_buffers,
    ext_hotspot,
    ext_memory_ports,
)


class TestMemoryPorts:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_memory_ports(ks=(4,), ports=(1, 2))

    def test_structure(self, result):
        assert len(result.data["rows"]) == 4  # 1 k x 2 S x 2 ports

    def test_ports_help(self, result):
        u = result.data["U_p"]
        assert u["k4_S10_m2"] > u["k4_S10_m1"]
        assert u["k4_S0_m2"] > u["k4_S0_m1"]

    def test_render(self, result):
        assert "ports" in result.render()


class TestHotspot:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_hotspot(fractions=(0.0, 0.4), k=2)

    def test_degradation(self, result):
        perf = result.data["perf"]
        assert (
            perf["f0.4"].processor_utilization
            < perf["f0"].processor_utilization
        )

    def test_asymmetric_solution_used(self, result):
        assert result.data["perf"]["f0.4"].method == "amva"
        assert result.data["perf"]["f0.4"].per_class_utilization is not None

    def test_ports_variant_present(self, result):
        assert "f0.4_ports4" in result.data["perf"]


class TestContextSwitch:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_context_switch(overheads=(0.0, 5.0))

    def test_useful_utilization_falls(self, result):
        u = result.data["U_p"]
        assert u[1] < u[0]

    def test_tolerance_rises(self, result):
        rows = result.data["rows"]
        assert rows[1][4] > rows[0][4]


class TestFiniteBuffers:
    def test_saturation_shape(self):
        result = ext_finite_buffers(
            thread_counts=(2, 8), credits=(2, None), duration=4_000.0
        )
        series = result.data["series"]
        # capped grows less from n_t=2 to 8 than unbounded
        growth_capped = series["credits=2"][1] / series["credits=2"][0]
        growth_free = series["unbounded"][1] / series["unbounded"][0]
        assert growth_capped < growth_free
