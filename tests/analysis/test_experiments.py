"""Tests for the experiment generators (small grids for speed; the full
paper-scale grids run in the benchmark harness)."""

import numpy as np
import pytest

from repro.analysis import (
    fig4_5_workload_surfaces,
    fig6_tolerance_surface,
    fig7_iso_work_lines,
    fig8_memory_surface,
    fig9_scaling_tolerance,
    fig10_throughput_scaling,
    headline_claims,
    table2_network_tolerance,
    table3_partitioning_network,
    table4_partitioning_memory,
)


class TestWorkloadSurfaces:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4_5_workload_surfaces(
            10.0, threads=(2, 4, 8), p_remotes=(0.1, 0.2, 0.4)
        )

    def test_shapes(self, result):
        assert result.data["U_p"].shape == (3, 3)
        assert result.data["tol_network"].shape == (3, 3)

    def test_up_decreases_with_p_remote(self, result):
        """Paper, Figure 4(a): U_p drops beyond the critical p_remote."""
        u = result.data["U_p"]
        assert np.all(u[:, 0] >= u[:, 2])

    def test_sobs_increases_with_threads(self, result):
        s = result.data["S_obs"]
        assert np.all(np.diff(s, axis=0) > 0)

    def test_lambda_net_bounded_by_saturation(self, result):
        from repro.core import lambda_net_saturation
        from repro.params import paper_defaults

        sat = lambda_net_saturation(paper_defaults())
        assert result.data["lambda_net"].max() <= sat * 1.001

    def test_render_mentions_figure(self, result):
        assert "Figure 4" in result.render()

    def test_r20_labeled_fig5(self):
        res = fig4_5_workload_surfaces(20.0, threads=(2,), p_remotes=(0.2,))
        assert res.ident == "Figure 5"


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return table2_network_tolerance(thread_counts=(3, 8))

    def test_rows_hit_target_sobs(self, result):
        """Each row's p_remote was tuned to land near the target S_obs."""
        for row in result.data["rows"]:
            assert 0.01 <= row["p_remote"] <= 0.9

    def test_more_threads_tolerate_same_sobs_better(self, result):
        """The table's point: same S_obs, higher n_t => higher tolerance."""
        rows = result.data["rows"]
        by = {(r["R"], r["n_t"]): r["tol"] for r in rows}
        assert by[(10.0, 8)] > by[(10.0, 3)]
        assert by[(20.0, 8)] > by[(20.0, 3)]

    def test_render(self, result):
        assert "tol_net" in result.render()


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return table3_partitioning_network(
            p_remotes=(0.2,), thread_counts=(1, 2, 4, 8, 40)
        )

    def test_iso_work(self, result):
        for r in result.data["rows"]:
            assert r["n_t"] * r["R"] == pytest.approx(40.0)

    def test_up_peaks_at_few_long_threads(self):
        """Paper: best *performance* comes from coalescing to a small
        n_t > 1 with a long runlength, not from many short threads."""
        res = table3_partitioning_network(
            p_remotes=(0.2,), thread_counts=(1, 2, 4, 8, 40)
        )
        perf_rows = res.blocks[0].splitlines()
        del perf_rows  # rendered; assert on the raw sweep below
        from repro.core import solve
        from repro.params import paper_defaults

        u = {
            nt: solve(
                paper_defaults(num_threads=nt, runlength=40.0 / nt)
            ).processor_utilization
            for nt in (1, 2, 8, 40)
        }
        assert u[2] > u[1]  # one thread cannot overlap anything
        assert u[2] > u[8] > u[40]  # fine grain wastes the work budget

    def test_small_r_tolerance_surprisingly_high(self, result):
        """Paper, Section 5: for R <= L the memory dominates both the actual
        and the ideal system, so tol_network is 'surprisingly high'."""
        rows = {r["n_t"]: r["tol"] for r in result.data["rows"]}
        assert rows[40] > rows[1]  # R = 1 row out-tolerates the R = 40 row


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return table4_partitioning_memory(
            memory_latencies=(10.0, 20.0), thread_counts=(1, 2, 4, 8)
        )

    def test_higher_l_lower_tolerance(self, result):
        rows = result.data["rows"]
        by = {(r["L"], r["n_t"]): r["tol"] for r in rows}
        for nt in (2, 4, 8):
            assert by[(20.0, nt)] <= by[(10.0, nt)] + 1e-9

    def test_long_threads_tolerate_memory(self, result):
        """Paper, Section 6: R >= L gives high tol_memory; fine-grained
        partitions (R < L) degrade it."""
        rows = {(r["L"], r["n_t"]): r["tol"] for r in result.data["rows"]}
        assert rows[(10.0, 2)] > 0.8  # R = 20 = 2L
        assert rows[(10.0, 2)] > rows[(10.0, 8)]  # R = 20 beats R = 5


class TestFig6Fig8:
    def test_fig6_more_work_more_tolerance(self):
        res = fig6_tolerance_surface(
            p_remotes=(0.2,), threads=(2, 8), runlengths=(5, 20)
        )
        surf = res.data["tol_p0.2"]
        assert surf[1, 1] > surf[0, 0]

    def test_fig8_saturates_at_one(self):
        """Paper: tol_memory ~ 1 for R >= 2L and n_t >= 6."""
        res = fig8_memory_surface(
            memory_latencies=(10.0,), threads=(6, 8), runlengths=(20, 40)
        )
        assert res.data["tol_L10"].min() >= 0.95


class TestFig7:
    def test_lines_present(self):
        res = fig7_iso_work_lines(
            p_remotes=(0.2,), works=(40.0,), thread_counts=(2, 4, 8)
        )
        pts = res.data["p0.2_w40"]
        assert len(pts) == 3
        rs = [r for r, _ in pts]
        assert rs == sorted(rs)


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return fig9_scaling_tolerance(
            runlengths=(10.0,), ks=(2, 6), threads=(2, 8)
        )

    def test_geometric_beats_uniform_at_scale(self, result):
        geo = result.data["R10_k6_geometric"]
        uni = result.data["R10_k6_uniform"]
        assert np.all(geo >= uni)

    def test_patterns_coincide_at_k2(self, result):
        """Paper: the two distributions coincide on the 2x2 machine (all
        remote nodes are equidistant)."""
        geo = result.data["R10_k2_geometric"]
        uni = result.data["R10_k2_uniform"]
        assert np.allclose(geo, uni, rtol=1e-6)


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10_throughput_scaling(ks=(2, 4, 6))

    def test_throughput_ordering(self, result):
        """linear >= ideal >= geometric >= uniform at every machine size."""
        thr = result.data["throughput"]
        for i in range(3):
            assert thr["linear"][i] >= thr["ideal_net"][i] - 1e-9
            assert thr["ideal_net"][i] >= thr["geometric"][i] - 1e-9
            assert thr["geometric"][i] >= thr["uniform"][i] - 1e-9

    def test_uniform_latency_grows_fastest(self, result):
        lat = result.data["latency"]
        assert lat["uni(net)"][-1] > lat["geo(net)"][-1]

    def test_ideal_memory_contention_exceeds_geometric(self, result):
        """The paper's Figure 10(b) observation: the zero-delay network
        *increases* memory latency relative to a finite network."""
        lat = result.data["latency"]
        assert lat["ideal(mem)"][-1] > lat["geo(mem)"][-1]


class TestHeadlineClaims:
    def test_all_rows_present(self):
        res = headline_claims()
        assert len(res.data["rows"]) == 10

    def test_closed_form_laws_match_paper(self):
        res = headline_claims()
        rows = {r[0]: r[2] for r in res.data["rows"]}
        assert rows["d_avg (4x4, p_sw=0.5)"] == pytest.approx(1.733, abs=0.001)
        assert rows["lambda_net,sat (Eq. 4)"] == pytest.approx(0.029, abs=0.001)
        assert rows["critical p_remote, R=10"] == pytest.approx(0.18, abs=0.005)
