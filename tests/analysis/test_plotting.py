"""Tests for the ASCII chart renderer."""

import math

import pytest

from repro.analysis import ascii_chart


class TestAsciiChart:
    def test_basic_render(self):
        out = ascii_chart([0, 1, 2], {"a": [0.0, 1.0, 2.0]})
        assert "|" in out
        assert "o a" in out  # legend

    def test_title_and_label(self):
        out = ascii_chart(
            [0, 1], {"s": [1.0, 2.0]}, title="T", y_label="metric"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "y: metric" in out

    def test_extremes_plotted_at_edges(self):
        out = ascii_chart([0, 10], {"s": [0.0, 5.0]}, width=20, height=5)
        rows = [l for l in out.splitlines() if "|" in l]
        # top row holds the max point, bottom row the min
        assert "o" in rows[0]
        assert "o" in rows[-1]

    def test_axis_labels(self):
        out = ascii_chart([2, 50], {"s": [1.0, 3.0]})
        assert "3" in out and "1" in out  # y extremes
        assert "2" in out and "50" in out  # x extremes

    def test_multiple_series_distinct_markers(self):
        out = ascii_chart(
            [0, 1], {"a": [0.0, 1.0], "b": [1.0, 0.0]}
        )
        assert "o a" in out and "x b" in out

    def test_nan_points_skipped(self):
        out = ascii_chart([0, 1, 2], {"s": [1.0, math.nan, 2.0]})
        assert "|" in out

    def test_flat_series_ok(self):
        out = ascii_chart([0, 1], {"s": [2.0, 2.0]})
        assert "o" in out

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one series"):
            ascii_chart([0, 1], {})
        with pytest.raises(ValueError, match="two x values"):
            ascii_chart([0], {"s": [1.0]})
        with pytest.raises(ValueError, match="points for"):
            ascii_chart([0, 1], {"s": [1.0]})
        with pytest.raises(ValueError, match="too small"):
            ascii_chart([0, 1], {"s": [1.0, 2.0]}, width=4)
        with pytest.raises(ValueError, match="identical"):
            ascii_chart([3, 3], {"s": [1.0, 2.0]})
        with pytest.raises(ValueError, match="no finite"):
            ascii_chart([0, 1], {"s": [math.nan, math.nan]})

    def test_dimensions(self):
        out = ascii_chart([0, 1], {"s": [0.0, 1.0]}, width=30, height=8)
        rows = [l for l in out.splitlines() if l.rstrip().endswith("|")]
        assert len(rows) == 8
        assert all(len(r.split("|")[1]) == 30 for r in rows)

    def test_figures_embed_charts(self):
        from repro.analysis import fig10_throughput_scaling

        res = fig10_throughput_scaling(ks=(2, 3, 4))
        text = res.render()
        assert "as a chart" in text
        assert "o linear" in text
