"""Unit tests for the sweep/grid harness."""

import numpy as np
import pytest

from repro.analysis import grid, sweep
from repro.params import paper_defaults


class TestSweep:
    def test_cartesian_product(self):
        recs = sweep(
            paper_defaults(k=2, num_threads=2),
            {"num_threads": [1, 2], "p_remote": [0.1, 0.2, 0.3]},
        )
        assert len(recs) == 6
        combos = {(r["num_threads"], r["p_remote"]) for r in recs}
        assert (1, 0.1) in combos and (2, 0.3) in combos

    def test_perf_attached(self):
        recs = sweep(paper_defaults(k=2), {"num_threads": [4]})
        assert recs[0]["perf"].processor_utilization > 0

    def test_empty_axis(self):
        assert sweep(paper_defaults(), {"num_threads": []}) == []

    def test_axis_values_applied(self):
        recs = sweep(paper_defaults(k=2), {"p_remote": [0.0, 0.5]})
        assert recs[0]["perf"].lambda_net == 0.0
        assert recs[1]["perf"].lambda_net > 0.0


class TestGrid:
    def test_shape_and_values(self):
        g = grid(
            paper_defaults(k=2),
            ("num_threads", [1, 2, 4]),
            ("p_remote", [0.1, 0.3]),
            lambda params, perf: perf.processor_utilization,
        )
        assert g.values.shape == (3, 2)
        assert np.all(g.values > 0)

    def test_at(self):
        g = grid(
            paper_defaults(k=2),
            ("num_threads", [1, 2]),
            ("p_remote", [0.1, 0.3]),
            lambda params, perf: float(params.workload.num_threads),
        )
        assert g.at(2, 0.3) == 2.0

    def test_argmax(self):
        g = grid(
            paper_defaults(k=2),
            ("num_threads", [1, 2, 8]),
            ("p_remote", [0.1]),
            lambda params, perf: perf.processor_utilization,
        )
        x, y, v = g.argmax()
        assert x == 8  # more threads, more utilization
        assert v == g.values.max()

    def test_monotone_utilization_along_threads(self):
        g = grid(
            paper_defaults(k=2),
            ("num_threads", [1, 2, 4, 8]),
            ("p_remote", [0.2]),
            lambda params, perf: perf.processor_utilization,
        )
        col = g.values[:, 0]
        assert np.all(np.diff(col) > 0)
