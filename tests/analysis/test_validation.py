"""Tests for the model-vs-simulation validation harness."""

import pytest

from repro.analysis import fig11_validation, validate_point
from repro.analysis.validation import ValidationRow
from repro.params import paper_defaults


class TestValidationRow:
    def test_rel_error(self):
        row = ValidationRow(paper_defaults(), "x", model=2.0, simulated=2.1)
        assert row.rel_error == pytest.approx(0.05)

    def test_zero_model(self):
        row = ValidationRow(paper_defaults(), "x", model=0.0, simulated=0.0)
        assert row.rel_error == 0.0
        row = ValidationRow(paper_defaults(), "x", model=0.0, simulated=1.0)
        assert row.rel_error == float("inf")


class TestValidatePoint:
    def test_four_measures(self):
        rows = validate_point(
            paper_defaults(k=2, num_threads=2), duration=5000.0, seed=0
        )
        assert {r.measure for r in rows} == {"U_p", "lambda_net", "S_obs", "L_obs"}

    def test_paper_accuracy_band(self):
        """Paper, Section 8: lambda_net within ~2%, S_obs within ~5%
        (we allow a wider band at this short test horizon)."""
        rows = validate_point(
            paper_defaults(p_remote=0.5), duration=25_000.0, seed=1
        )
        by = {r.measure: r for r in rows}
        assert by["lambda_net"].rel_error < 0.05
        assert by["S_obs"].rel_error < 0.08

    def test_spn_simulator_option(self):
        """The Petri-net path (the paper's own formalism) is selectable."""
        rows = validate_point(
            paper_defaults(k=2, num_threads=3, p_remote=0.4),
            duration=15_000.0,
            seed=2,
            simulator="spn",
        )
        by = {r.measure: r for r in rows}
        assert by["U_p"].rel_error < 0.06
        assert by["lambda_net"].rel_error < 0.06

    def test_spn_rejects_non_exponential(self):
        with pytest.raises(ValueError, match="exponential-only"):
            validate_point(
                paper_defaults(k=2),
                simulator="spn",
                memory_dist="deterministic",
            )

    def test_unknown_simulator(self):
        with pytest.raises(ValueError, match="unknown simulator"):
            validate_point(paper_defaults(k=2), simulator="gem5")


class TestFig11:
    def test_structure(self):
        rows, text = fig11_validation(
            thread_counts=(2, 4),
            switch_delays=(10.0,),
            duration=8000.0,
        )
        assert len(rows) == 2 * 4
        assert "Figure 11" in text
        assert "lam_net(sim)" in text

    def test_rates_increase_with_threads(self):
        rows, _ = fig11_validation(
            thread_counts=(1, 8), switch_delays=(10.0,), duration=8000.0
        )
        lam = [
            r.simulated
            for r in rows
            if r.measure == "lambda_net"
        ]
        assert lam[1] > lam[0]
