"""Smoke tests: every shipped example runs clean and says what it promises."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "processor utilization" in out
        assert "tol_network" in out
        assert "critical p_remote" in out

    def test_thread_partitioning(self):
        out = run_example("thread_partitioning.py", "40")
        assert "best partitioning" in out
        assert "coalesced" in out

    def test_scaling_study(self):
        out = run_example("scaling_study.py")
        assert "geometric" in out and "uniform" in out
        assert "throughput lost" in out

    def test_validate_model(self):
        out = run_example("validate_model.py", "4000")
        assert "MVA model" in out
        assert "deterministic-memory" in out

    def test_data_distribution(self):
        out = run_example("data_distribution.py", "320")
        assert "BLOCK" in out and "CYCLIC" in out
        assert "tolerated" in out

    def test_architecture_extensions(self):
        out = run_example("architecture_extensions.py")
        assert "multiport" in out.lower()
        assert "hotspot" in out.lower()

    def test_all_examples_covered(self):
        """Every example file has a smoke test above."""
        tested = {
            "quickstart.py",
            "thread_partitioning.py",
            "scaling_study.py",
            "validate_model.py",
            "data_distribution.py",
            "architecture_extensions.py",
        }
        on_disk = {p.name for p in EXAMPLES.glob("*.py")}
        assert on_disk == tested


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-v"])
