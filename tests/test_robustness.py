"""Robustness and edge-case tests across the stack."""

import numpy as np
import pytest

from repro.core import MMSModel, solve
from repro.params import paper_defaults
from repro.queueing import (
    ClosedNetwork,
    bard_schweitzer,
    exact_mva_single_class,
    solve_symmetric,
)


class TestDegenerateNetworks:
    def test_all_zero_service(self):
        """A network of ideal stations: infinite throughput is not claimed;
        the solver reports zero-waiting cycles cleanly."""
        net = ClosedNetwork(
            visits=np.ones((1, 3)),
            service=np.zeros(3),
            populations=np.array([5]),
        )
        sol = bard_schweitzer(net)
        assert sol.converged
        assert np.all(sol.waiting == 0.0)

    def test_single_station_single_customer(self):
        net = ClosedNetwork(
            visits=np.ones((1, 1)),
            service=np.array([2.0]),
            populations=np.array([1]),
        )
        assert exact_mva_single_class(net).throughput[0] == pytest.approx(0.5)

    def test_class_with_no_visits_anywhere(self):
        """A class that visits nothing has undefined cycle time; it must not
        poison the other classes."""
        net = ClosedNetwork(
            visits=np.array([[0.0, 0.0], [1.0, 1.0]]),
            service=np.array([1.0, 2.0]),
            populations=np.array([3, 3]),
        )
        sol = bard_schweitzer(net)
        assert sol.throughput[1] > 0
        assert np.isfinite(sol.throughput[1])

    def test_symmetric_zero_visits(self):
        sol = solve_symmetric(
            np.zeros(3), np.ones(3), np.arange(3), 4
        )
        assert sol.throughput == 0.0 or not np.isfinite(sol.throughput)


class TestModelEdges:
    def test_single_node_all_remote_requested(self):
        """k=1 with p_remote>0: no remote modules exist; the model treats
        the workload as local-only rather than crashing."""
        perf = solve(paper_defaults(k=1, p_remote=0.5))
        assert perf.lambda_net == 0.0
        assert perf.processor_utilization > 0

    def test_p_remote_one(self):
        perf = solve(paper_defaults(p_remote=1.0))
        assert perf.l_obs_local == 0.0 or perf.params.workload.p_remote == 1.0
        assert perf.lambda_net == pytest.approx(perf.access_rate)

    def test_extreme_thread_count(self):
        perf = solve(paper_defaults(num_threads=500))
        assert perf.converged
        assert perf.processor_utilization <= 1.0 + 1e-9

    def test_tiny_runlength(self):
        perf = solve(paper_defaults(runlength=0.001))
        assert perf.converged
        assert perf.processor_utilization < 0.01

    def test_huge_switch_delay(self):
        perf = solve(paper_defaults(switch_delay=1e6))
        assert perf.converged
        assert perf.processor_utilization < 0.1

    def test_rectangular_torus(self):
        perf = solve(paper_defaults(k=4, ky=2))
        assert perf.converged
        assert perf.params.arch.num_processors == 8

    def test_1xk_ring(self):
        """Degenerate 1 x k torus is a ring; everything still works."""
        perf = solve(paper_defaults(k=1, ky=8))
        assert perf.converged
        assert perf.lambda_net > 0

    def test_2x2_all_patterns_identical(self):
        """On 2x2 every remote node is equidistant: geometric == uniform."""
        u = [
            solve(paper_defaults(k=2, pattern=p)).processor_utilization
            for p in ("geometric", "uniform")
        ]
        assert u[0] == pytest.approx(u[1], rel=1e-9)


class TestModelConsistencyAcrossMethods:
    @pytest.mark.parametrize("method", ["symmetric", "amva", "linearizer"])
    def test_summary_finite(self, method):
        perf = MMSModel(paper_defaults(k=2, num_threads=3)).solve(method=method)
        for v in perf.summary().values():
            assert np.isfinite(v)

    def test_auto_resolves_to_symmetric_for_spmd(self):
        perf = MMSModel(paper_defaults()).solve(method="auto")
        assert perf.method == "symmetric"

    def test_aggregate_path_on_symmetric_input_matches(self):
        """Force the asymmetric aggregation path on a symmetric workload:
        the rate-weighted aggregates must equal the class-0 extraction."""
        params = paper_defaults(k=2, num_threads=3, p_remote=0.4)
        model = MMSModel(params)
        network = model.build_network()
        from repro.queueing import bard_schweitzer as bs

        qsol = bs(network)
        agg = model._measures_aggregate(network, qsol, "amva")
        cls0 = model.solve(method="amva")
        assert agg.processor_utilization == pytest.approx(
            cls0.processor_utilization, rel=1e-9
        )
        assert agg.s_obs == pytest.approx(cls0.s_obs, rel=1e-6)
        assert agg.l_obs == pytest.approx(cls0.l_obs, rel=1e-6)


class TestSimulationEdges:
    def test_zero_switch_delay_simulates(self):
        from repro.simulation import simulate

        res = simulate(paper_defaults(switch_delay=0.0), duration=3000.0, seed=1)
        assert res.s_obs == pytest.approx(0.0, abs=1e-9)
        assert res.processor_utilization > 0.5

    def test_zero_memory_latency_simulates(self):
        from repro.simulation import simulate

        res = simulate(
            paper_defaults(memory_latency=0.0, p_remote=0.0),
            duration=3000.0,
            seed=1,
        )
        assert res.processor_utilization == pytest.approx(1.0, abs=0.01)

    def test_deterministic_everything(self):
        from repro.simulation import simulate

        res = simulate(
            paper_defaults(p_remote=0.0, num_threads=1),
            duration=5000.0,
            seed=1,
            memory_dist="deterministic",
            runlength_dist="deterministic",
        )
        # one thread, deterministic R = L: the processor alternates 10/10
        assert res.processor_utilization == pytest.approx(0.5, abs=0.02)
