"""sweep()/grid() through the runner: measures, progress, order invariance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import grid, sweep
from repro.params import paper_defaults
from repro.runner import SweepRunner, configure, default_runner, effective_config


class TestMeasure:
    def test_string_measure_drops_perf(self):
        recs = sweep(
            paper_defaults(k=2), {"num_threads": [1, 2]}, measure="U_p"
        )
        assert all("perf" not in r for r in recs)
        assert all(isinstance(r["U_p"], float) for r in recs)
        assert recs[0]["U_p"] < recs[1]["U_p"]

    def test_attribute_measure(self):
        recs = sweep(
            paper_defaults(k=2),
            {"num_threads": [2]},
            measure="remote_round_trip",
        )
        assert recs[0]["remote_round_trip"] > 0

    def test_callable_measure(self):
        recs = sweep(
            paper_defaults(k=2),
            {"num_threads": [2]},
            measure=lambda params, perf: perf.processor_utilization * 2,
        )
        assert "value" in recs[0]

    def test_unknown_measure_raises(self):
        with pytest.raises(KeyError, match="unknown measure"):
            sweep(paper_defaults(k=2), {"num_threads": [2]}, measure="nope")

    def test_measure_matches_perf_path(self):
        axes = {"num_threads": [1, 2], "p_remote": [0.1, 0.3]}
        full = sweep(paper_defaults(k=2), axes)
        scalar = sweep(paper_defaults(k=2), axes, measure="U_p")
        for f, s in zip(full, scalar):
            assert s["U_p"] == f["perf"].processor_utilization


class TestProgress:
    def test_progress_called_per_unique_point(self):
        seen = []
        sweep(
            paper_defaults(k=2),
            {"num_threads": [1, 2, 4]},
            progress=lambda done, total, res: seen.append((done, total)),
        )
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_progress_includes_cache_hits(self, tmp_path):
        runner = SweepRunner(cache_dir=str(tmp_path))
        axes = {"num_threads": [1, 2]}
        sweep(paper_defaults(k=2), axes, runner=runner)
        hits = []
        sweep(
            paper_defaults(k=2),
            axes,
            runner=runner,
            progress=lambda done, total, res: hits.append(res.from_cache),
        )
        assert hits == [True, True]


class TestRunnerWiring:
    def test_explicit_runner_cache(self, tmp_path):
        runner = SweepRunner(cache_dir=str(tmp_path))
        axes = {"num_threads": [1, 2, 4]}
        a = sweep(paper_defaults(k=2), axes, runner=runner)
        b = sweep(paper_defaults(k=2), axes, runner=runner)
        assert runner.store.hits == 3
        for ra, rb in zip(a, b):
            assert ra["perf"].summary() == rb["perf"].summary()

    def test_configure_round_trip(self):
        prev = configure(jobs=3, retries=2)
        try:
            cfg = effective_config()
            assert cfg["jobs"] == 3 and cfg["retries"] == 2
            assert default_runner().jobs == 3
        finally:
            configure(**prev)

    def test_configure_rejects_unknown(self):
        with pytest.raises(TypeError):
            configure(warp_factor=9)

    def test_env_defaults(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SWEEP_JOBS", "5")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        cfg = effective_config()
        assert cfg["jobs"] == 5
        assert cfg["cache_dir"] == str(tmp_path / "envcache")

    def test_failed_point_raises_from_sweep(self, tmp_path, monkeypatch):
        from tests.runner.test_executor import _flaky_worker

        monkeypatch.setenv("REPRO_TEST_CHAOS_DIR", str(tmp_path))
        runner = SweepRunner(retries=0, worker=_flaky_worker)
        with pytest.raises(RuntimeError, match="failed"):
            sweep(paper_defaults(k=2), {"num_threads": [2]}, runner=runner)


class TestGridThroughRunner:
    def test_grid_values_match_legacy_semantics(self):
        g = grid(
            paper_defaults(k=2),
            ("num_threads", [1, 2, 4]),
            ("p_remote", [0.1, 0.3]),
            lambda params, perf: perf.processor_utilization,
        )
        assert g.values.shape == (3, 2)
        recs = sweep(
            paper_defaults(k=2),
            {"num_threads": [1, 2, 4], "p_remote": [0.1, 0.3]},
            measure="U_p",
        )
        flat = np.array([r["U_p"] for r in recs]).reshape(3, 2)
        assert np.array_equal(g.values, flat)

    def test_grid_shares_runner_cache(self, tmp_path):
        runner = SweepRunner(cache_dir=str(tmp_path))
        args = (
            paper_defaults(k=2),
            ("num_threads", [1, 2]),
            ("p_remote", [0.1, 0.3]),
        )
        measure = lambda params, perf: perf.s_obs  # noqa: E731
        a = grid(*args, measure, runner=runner)
        b = grid(*args, measure, runner=runner)
        assert np.array_equal(a.values, b.values)
        assert runner.store.hits == 4


class TestOrderIndependence:
    @settings(max_examples=10, deadline=None)
    @given(
        threads=st.permutations([1, 2, 4, 8]),
        p_remotes=st.permutations([0.1, 0.2, 0.4]),
    )
    def test_results_independent_of_axis_iteration_order(
        self, threads, p_remotes
    ):
        """The map point -> U_p must not depend on the order axes are walked
        (content-addressed dedup may serve any point from any prior order)."""
        recs = sweep(
            paper_defaults(k=2),
            {"num_threads": list(threads), "p_remote": list(p_remotes)},
            measure="U_p",
        )
        by_point = {(r["num_threads"], r["p_remote"]): r["U_p"] for r in recs}
        assert by_point == _REFERENCE_UP

    def test_axis_order_swap_same_point_values(self):
        a = sweep(
            paper_defaults(k=2),
            {"num_threads": [1, 2], "p_remote": [0.1, 0.2]},
            measure="U_p",
        )
        b = sweep(
            paper_defaults(k=2),
            {"p_remote": [0.1, 0.2], "num_threads": [1, 2]},
            measure="U_p",
        )
        key = lambda r: (r["num_threads"], r["p_remote"])  # noqa: E731
        assert {key(r): r["U_p"] for r in a} == {key(r): r["U_p"] for r in b}


def _reference_up():
    out = {}
    for n in (1, 2, 4, 8):
        for p in (0.1, 0.2, 0.4):
            recs = sweep(
                paper_defaults(k=2),
                {"num_threads": [n], "p_remote": [p]},
                measure="U_p",
            )
            out[(n, p)] = recs[0]["U_p"]
    return out


_REFERENCE_UP = _reference_up()
