"""The shared-memory group handoff of the process backend.

Large same-shape symmetric groups ride to a pool worker as raw arrays in
``multiprocessing.shared_memory`` segments instead of per-point pickles.
These tests pin the contract of that path: records bitwise-equal to the
in-process batch backend, honest telemetry (``handoff == "shm"`` plus the
``solver.batch`` counters re-emitted in the parent), clean degradation to
the in-parent batch backend when the pool dies mid-group, and the
eligibility gates (custom worker, per-point timeout, group size).
"""

from __future__ import annotations

import pytest

from repro.params import paper_defaults
from repro.runner import JobSpec, SweepRunner, canonical_json
from repro.runner.executor import solve_job

pytestmark = pytest.mark.usefixtures("_no_leaked_plan")


def _specs(n_threads=(1, 2, 4, 8), p_remotes=(0.1, 0.2, 0.3), k=2):
    return [
        JobSpec(paper_defaults(k=k, num_threads=n, p_remote=p))
        for n in n_threads
        for p in p_remotes
    ]


def _records(report):
    assert report.ok, [r.error for r in report.results if not r.ok]
    return [canonical_json(r) for r in report.records()]


@pytest.fixture
def _no_leaked_plan():
    yield
    from repro import resilience

    assert resilience.get_injector() is None


@pytest.fixture
def fault_plan():
    from repro import resilience

    installed = []

    def _install(plan):
        installed.append(resilience.configure(fault_plan=plan))
        return resilience.get_injector()

    yield _install
    for prev in reversed(installed):
        resilience.configure(**prev)


class TestShmHandoff:
    def test_records_bitwise_equal_batch_backend(self):
        specs = _specs()
        batch = SweepRunner(backend="batch").run(specs)
        shm = SweepRunner(backend="process", jobs=2, min_shm_points=4).run(specs)
        assert _records(shm) == _records(batch)

    def test_manifest_marks_shm_batches(self):
        report = SweepRunner(backend="process", jobs=2, min_shm_points=4).run(
            _specs()
        )
        assert report.manifest.mode == "parallel"
        assert report.manifest.degradations == []
        shm_batches = [
            b for b in report.manifest.solver_batches if b.get("handoff") == "shm"
        ]
        assert shm_batches
        assert sum(b["batch_size"] for b in shm_batches) == 12
        assert all(b["method"] == "symmetric" for b in shm_batches)

    def test_batch_counters_reemitted_in_parent(self):
        report = SweepRunner(backend="process", jobs=2, min_shm_points=4).run(
            _specs()
        )
        counters = report.manifest.metrics.get("counters", {})
        assert counters.get("solver.batch.calls", 0) >= 1
        assert counters.get("solver.batch.points", 0) >= 12

    def test_mixed_machine_sizes_grouped_separately(self):
        # two (k) shapes cannot share one SoA stack: each forms its own group
        specs = _specs(k=2) + _specs(k=3)
        batch = SweepRunner(backend="batch").run(specs)
        shm = SweepRunner(backend="process", jobs=2, min_shm_points=4).run(specs)
        assert _records(shm) == _records(batch)
        shm_batches = [
            b
            for b in shm.manifest.solver_batches
            if b.get("handoff") == "shm"
        ]
        assert len(shm_batches) == 2


class TestEligibilityGates:
    def test_small_groups_stay_per_point(self):
        report = SweepRunner(
            backend="process", jobs=2, min_shm_points=1024
        ).run(_specs())
        assert report.manifest.mode == "parallel"
        assert not any(
            b.get("handoff") == "shm" for b in report.manifest.solver_batches
        )

    def test_timeout_disables_shm(self):
        report = SweepRunner(
            backend="process", jobs=2, min_shm_points=4, timeout=60.0
        ).run(_specs())
        assert report.ok
        assert not any(
            b.get("handoff") == "shm" for b in report.manifest.solver_batches
        )

    def test_custom_worker_disables_shm(self):
        report = SweepRunner(
            backend="process", jobs=2, min_shm_points=4, worker=_echo_worker
        ).run(_specs())
        assert report.ok
        assert not any(
            b.get("handoff") == "shm" for b in report.manifest.solver_batches
        )

    def test_min_shm_points_validated(self):
        with pytest.raises(ValueError, match="min_shm_points"):
            SweepRunner(min_shm_points=1)

    def test_kernel_validated_at_construction(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            SweepRunner(kernel="bogus")


def _echo_worker(payload):
    return solve_job(payload)


class TestShmDegradation:
    def test_pool_death_degrades_group_to_batch(self, fault_plan):
        fault_plan({"seed": 7, "sites": {"worker.crash": {"on_nth": [1]}}})
        specs = _specs()
        report = SweepRunner(backend="process", jobs=2, min_shm_points=4).run(
            specs
        )
        assert report.ok
        degradations = report.manifest.degradations
        assert any(
            d["from_mode"] == "shm" and d["to_mode"] == "batch"
            for d in degradations
        )
        # the degraded group still produced the canonical records
        baseline = SweepRunner(backend="batch").run(specs)
        assert _records(report) == _records(baseline)
