"""The batched sweep backend: routing, equivalence, and telemetry."""

import os

import pytest

from repro.analysis.sweep import sweep
from repro.params import paper_defaults
from repro.runner import JobSpec, SweepRunner, canonical_json
from repro.runner.config import configure, effective_config


def _specs(n_threads=(1, 2, 4), p_remotes=(0.1, 0.2)):
    return [
        JobSpec(paper_defaults(num_threads=n, p_remote=p))
        for n in n_threads
        for p in p_remotes
    ]


class TestBackendRouting:
    def test_default_auto_batches_in_process(self):
        report = SweepRunner().run(_specs())
        assert report.manifest.backend == "auto"
        assert report.manifest.mode == "batch"
        assert report.manifest.solver_batches

    def test_forced_serial_never_batches(self):
        report = SweepRunner(backend="serial").run(_specs())
        assert report.manifest.mode == "serial"
        assert report.manifest.solver_batches == []

    def test_single_point_stays_serial(self):
        report = SweepRunner(backend="batch").run(_specs((2,), (0.2,)))
        assert report.manifest.mode == "serial"

    def test_custom_worker_disables_batching(self):
        calls = []

        def worker(payload):
            from repro.runner.executor import solve_job

            calls.append(payload["key"])
            return solve_job(payload)

        report = SweepRunner(worker=worker).run(_specs())
        assert report.manifest.mode == "serial"
        assert len(calls) == 6

    def test_unbatchable_method_goes_serial(self):
        specs = [
            JobSpec(paper_defaults(k=2, num_threads=n), method="linearizer")
            for n in (1, 2, 3)
        ]
        report = SweepRunner(backend="batch").run(specs)
        assert report.manifest.mode == "serial"
        assert report.ok

    def test_mixed_machine_sizes_batch_per_group(self):
        specs = [
            JobSpec(paper_defaults(k=k, num_threads=n))
            for k in (2, 3)
            for n in (1, 2, 4)
        ]
        report = SweepRunner(backend="batch").run(specs)
        assert report.manifest.mode == "batch"
        assert len(report.manifest.solver_batches) == 2
        assert {b["batch_size"] for b in report.manifest.solver_batches} == {3}

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            SweepRunner(backend="quantum")
        with pytest.raises(ValueError, match="min_batch_points"):
            SweepRunner(min_batch_points=1)


class TestBackendInterop:
    """Cross-backend *interaction* contracts (cache handoff, progress order).

    Pure record-equivalence across the backend x kernel matrix lives in
    ``tests/queueing/test_kernel_conformance.py`` on the full Figure-4
    lattice; this class only keeps what that suite does not cover.
    """

    def test_batch_fills_cache_serial_hits_it(self, tmp_path):
        specs = _specs()
        cold = SweepRunner(backend="batch", cache_dir=str(tmp_path)).run(specs)
        assert cold.manifest.mode == "batch"
        warm = SweepRunner(backend="serial", cache_dir=str(tmp_path)).run(specs)
        assert warm.manifest.cache_hit_rate == 1.0
        assert [canonical_json(r) for r in warm.records()] == [
            canonical_json(r) for r in cold.records()
        ]

    def test_progress_in_order_under_batch(self):
        seen = []
        SweepRunner(backend="batch").run(
            _specs(), progress=lambda done, total, res: seen.append((done, total))
        )
        assert seen == [(i + 1, 6) for i in range(6)]


class TestTelemetry:
    def test_solver_batches_shape(self):
        report = SweepRunner(backend="batch").run(_specs())
        (batch,) = report.manifest.solver_batches
        assert batch["method"] == "symmetric"
        assert batch["batch_size"] == 6
        assert batch["iterations"] > 0
        assert batch["converged"] == 6
        assert 0.0 <= batch["max_residual"] <= 1e-12
        assert batch["active_trajectory"][0] == 6
        assert batch["wall_time_s"] > 0.0

    def test_telemetry_survives_manifest_json(self, tmp_path):
        import json

        report = SweepRunner(backend="batch").run(_specs())
        out = tmp_path / "manifest.json"
        report.manifest.to_json(out)
        data = json.loads(out.read_text())
        assert data["backend"] == "auto" or data["backend"] == "batch"
        assert data["solver_batches"][0]["batch_size"] == 6

    def test_point_latency_counts_batched_points(self):
        report = SweepRunner(backend="batch").run(_specs())
        assert report.manifest.point_latency["count"] == 6


class TestConfiguration:
    def test_env_var_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_BACKEND", "serial")
        assert effective_config()["backend"] == "serial"
        monkeypatch.delenv("REPRO_SWEEP_BACKEND")
        assert effective_config()["backend"] == "auto"

    def test_configure_backend(self):
        prev = configure(backend="batch")
        try:
            assert effective_config()["backend"] == "batch"
        finally:
            configure(**prev)

    def test_sweep_backend_kwarg(self):
        records = sweep(
            paper_defaults(),
            {"num_threads": [1, 2, 4]},
            measure="U_p",
            backend="batch",
        )
        serial = sweep(
            paper_defaults(),
            {"num_threads": [1, 2, 4]},
            measure="U_p",
            backend="serial",
        )
        assert records == serial

    def test_sweep_rejects_bad_backend(self):
        with pytest.raises(ValueError, match="backend"):
            sweep(paper_defaults(), {"num_threads": [1, 2]}, backend="nope")
