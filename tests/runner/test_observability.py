"""Runner observability: stage timings, span parenting, amortized batches.

These tests exercise the full wiring: the sweep runner's stage spans and
manifest `stages`/`metrics` blocks, worker-span merging across the process
pool, and the amortization contract for batched solves (the true batch wall
clock is recorded once; per-point shares are flagged, never re-summed).
"""

import os

import pytest

from repro import obs
from repro.params import paper_defaults
from repro.runner import JobSpec, SweepRunner
from repro.runner.executor import solve_job


def _specs(n, method="amva"):
    return [
        JobSpec(params=paper_defaults(num_threads=1 + i), method=method)
        for i in range(n)
    ]


@pytest.fixture
def traced(tmp_path):
    """Tracing into a tmp JSONL file for the duration of one test."""
    path = tmp_path / "trace.jsonl"
    prev = obs.configure(trace=str(path))
    yield path
    tracer = obs.get_tracer()
    if tracer is not None:
        tracer.close()
    obs.configure(**prev)


class TestStages:
    def test_stages_tile_the_wall_clock(self, tmp_path):
        runner = SweepRunner(cache_dir=str(tmp_path / "c"), backend="serial")
        manifest = runner.run(_specs(4)).manifest
        assert set(manifest.stages) == {
            "spec_hash",
            "cache_lookup",
            "solve",
            "store_write",
            "assemble",
        }
        total = sum(manifest.stages.values())
        # consecutive perf_counter segments: they tile the run
        assert total == pytest.approx(manifest.wall_clock_s, rel=0.05)

    def test_stages_present_without_tracing(self, tmp_path):
        assert not obs.enabled()
        manifest = SweepRunner(backend="serial").run(_specs(2)).manifest
        assert manifest.stages["solve"] > 0

    def test_manifest_metrics_delta(self, tmp_path):
        runner = SweepRunner(cache_dir=str(tmp_path / "c"), backend="serial")
        manifest = runner.run(_specs(3)).manifest
        counters = manifest.metrics["counters"]
        assert counters["solver.points"] == 3
        assert counters["store.misses"] == 3
        assert counters["store.puts"] == 3
        # a warm rerun's delta shows hits, not solves
        warm = SweepRunner(cache_dir=str(tmp_path / "c"), backend="serial")
        counters = warm.run(_specs(3)).manifest.metrics["counters"]
        assert counters["store.hits"] == 3
        assert "solver.points" not in counters


class TestTraceSpans:
    def test_serial_run_trace_validates_with_one_root(self, traced):
        SweepRunner(backend="serial").run(_specs(3))
        obs.get_tracer().close()
        summary = obs.validate_trace(traced)
        assert summary.roots == 1
        assert summary.span_names["sweep.run"] == 1
        assert summary.span_names["sweep.point"] == 3
        assert summary.span_names["solver.solve"] == 3

    def test_stage_spans_parent_under_run(self, traced):
        SweepRunner(backend="serial").run(_specs(2))
        obs.get_tracer().close()
        from repro.obs.report import load_trace

        spans = {s["name"]: s for s in load_trace(traced) if s.get("kind") == "span"}
        run_id = spans["sweep.run"]["span_id"]
        for stage in ("sweep.spec_hash", "sweep.cache_lookup", "sweep.solve",
                      "sweep.store_write", "sweep.assemble"):
            assert spans[stage]["parent_id"] == run_id

    def test_process_backend_merges_worker_spans(self, traced):
        runner = SweepRunner(
            jobs=2, backend="process", min_parallel_points=2, worker=solve_job
        )
        manifest = runner.run(_specs(4)).manifest
        assert manifest.mode == "parallel"
        obs.get_tracer().close()
        summary = obs.validate_trace(traced)  # parent linkage holds
        assert summary.roots == 1
        assert summary.span_names["sweep.point"] == 4

        from repro.obs.report import load_trace

        spans = [s for s in load_trace(traced) if s.get("kind") == "span"]
        by_name = {}
        for s in spans:
            by_name.setdefault(s["name"], []).append(s)
        solve_id = by_name["sweep.solve"][0]["span_id"]
        points = by_name["sweep.point"]
        assert all(p["parent_id"] == solve_id for p in points)
        # the spans really came from worker processes
        assert any(p["pid"] != os.getpid() for p in points)
        # and the workers' nested solver spans rode along too
        assert len(by_name["solver.solve"]) == 4

    def test_disabled_tracing_adds_no_payload_keys(self):
        """Without a tracer, pool payloads are untouched (byte-stable
        dispatch) and solve_job returns no span key."""
        out = solve_job(_specs(1)[0].payload())
        assert "spans" not in out


class TestAmortizedBatches:
    def test_batch_points_flagged_amortized(self, tmp_path):
        runner = SweepRunner(cache_dir=str(tmp_path / "c"), backend="batch")
        report = runner.run(_specs(5))
        assert report.manifest.mode == "batch"
        assert all(r.amortized for r in report.results)
        lat = report.manifest.point_latency
        assert lat["count"] == 5 and lat["amortized"] == 5
        # the true batch wall is recorded exactly once, in solver_batches
        [batch] = report.manifest.solver_batches
        assert batch["batch_size"] == 5
        assert batch["wall_time_s"] > 0

    def test_serial_points_not_amortized(self, tmp_path):
        report = SweepRunner(backend="serial").run(_specs(3))
        assert not any(r.amortized for r in report.results)
        assert report.manifest.point_latency["amortized"] == 0

    def test_amortized_flag_survives_cache_round_trip(self, tmp_path):
        cold = SweepRunner(cache_dir=str(tmp_path / "c"), backend="batch")
        assert all(r.amortized for r in cold.run(_specs(4)).results)
        warm = SweepRunner(cache_dir=str(tmp_path / "c"), backend="batch")
        report = warm.run(_specs(4))
        assert report.manifest.cache_hits == 4
        assert all(r.amortized and r.from_cache for r in report.results)

    def test_amortized_share_sums_to_batch_wall(self, tmp_path):
        report = SweepRunner(backend="batch").run(_specs(4))
        [batch] = report.manifest.solver_batches
        lat = report.manifest.point_latency
        # shares are an even split of the measured batch loop, which is
        # at least the kernel's own wall clock
        assert lat["total"] >= batch["wall_time_s"] * 0.99
        assert lat["max"] == pytest.approx(lat["min"])
