"""JobSpec keys and RunResult records: stability, canonicalization."""

import json

import pytest

from repro.params import MMSParams, paper_defaults
from repro.runner import JobSpec, SweepRunner, canonical_json


class TestCanonicalJson:
    def test_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [2, 3]}) == '{"a":[2,3],"b":1}'

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})


class TestJobSpecKey:
    def test_stable_across_calls(self):
        spec = JobSpec(paper_defaults())
        assert spec.key() == spec.key()

    def test_same_point_same_key_regardless_of_construction(self):
        a = paper_defaults(num_threads=4, p_remote=0.3)
        b = paper_defaults().with_(p_remote=0.3).with_(num_threads=4)
        assert JobSpec(a).key() == JobSpec(b).key()

    def test_different_point_different_key(self):
        assert (
            JobSpec(paper_defaults(num_threads=4)).key()
            != JobSpec(paper_defaults(num_threads=8)).key()
        )

    def test_different_method_different_key(self):
        p = paper_defaults(k=2)
        assert JobSpec(p, "amva").key() != JobSpec(p, "exact").key()

    def test_auto_resolves_to_symmetric_for_spmd(self):
        p = paper_defaults()
        assert JobSpec(p, "auto").canonical_method() == "symmetric"
        assert JobSpec(p, "auto").key() == JobSpec(p, "symmetric").key()

    def test_auto_resolves_to_amva_for_hotspot(self):
        p = paper_defaults(pattern="hotspot", k=2)
        assert JobSpec(p, "auto").canonical_method() == "amva"
        assert JobSpec(p, "auto").key() == JobSpec(p, "amva").key()

    def test_key_is_sha256_hex(self):
        key = JobSpec(paper_defaults()).key()
        assert len(key) == 64
        int(key, 16)  # hex digest


class TestPayloadRoundTrip:
    def test_round_trip(self):
        spec = JobSpec(paper_defaults(num_threads=4, p_sw=0.25), "amva")
        back = JobSpec.from_payload(spec.payload())
        assert back.params == spec.params
        assert back.method == "amva"
        assert back.key() == spec.key()

    def test_payload_is_json_safe(self):
        payload = JobSpec(paper_defaults()).payload()
        restored = json.loads(json.dumps(payload))
        assert JobSpec.from_payload(restored).params == paper_defaults()


class TestRunResultRecord:
    def test_record_is_deterministic_and_timing_free(self):
        runner = SweepRunner()
        spec = JobSpec(paper_defaults(k=2, num_threads=2))
        rec1 = runner.run([spec]).results[0].record()
        rec2 = runner.run([spec]).results[0].record()
        assert rec1 == rec2
        assert "elapsed" not in rec1 and "from_cache" not in rec1
        assert set(rec1) == {"key", "method", "params", "measures"}

    def test_record_raises_on_failure(self):
        from repro.runner.spec import RunResult

        failed = RunResult(
            key="k", params=paper_defaults(), method="symmetric",
            perf=None, error="boom",
        )
        with pytest.raises(ValueError, match="boom"):
            failed.record()


class TestParamsSerialization:
    def test_mmsparams_round_trip_through_json(self):
        p = paper_defaults(
            num_threads=6, p_remote=0.35, pattern="hotspot", hot_fraction=0.7,
            memory_ports=2, context_switch=1.0, ky=2,
        )
        restored = MMSParams.from_dict(json.loads(json.dumps(p.to_dict())))
        assert restored == p

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(TypeError, match="unknown"):
            MMSParams.from_dict({"arch": {}, "workload": {}, "extra": 1})
        with pytest.raises(TypeError, match="unknown"):
            MMSParams.from_dict({"arch": {"warp_speed": 9}})

    def test_perf_round_trip_bitwise(self):
        from repro.core import MMSModel, MMSPerformance

        perf = MMSModel(paper_defaults(k=2)).solve()
        restored = MMSPerformance.from_dict(
            json.loads(json.dumps(perf.to_dict()))
        )
        assert restored.summary() == perf.summary()
        assert restored.params == perf.params
        assert restored.memory.utilization == perf.memory.utilization

    def test_perf_round_trip_asymmetric(self):
        import numpy as np

        from repro.core import MMSModel, MMSPerformance

        perf = MMSModel(paper_defaults(k=2, pattern="hotspot")).solve()
        restored = MMSPerformance.from_dict(
            json.loads(json.dumps(perf.to_dict()))
        )
        assert np.array_equal(
            restored.per_class_utilization, perf.per_class_utilization
        )
