"""SweepRunner: dedup, caching, parallel equality, timeout/retry/crash paths.

The chaos workers are module-level so they pickle for process-pool dispatch;
they coordinate through files under ``$REPRO_TEST_CHAOS_DIR`` because that
state must be visible across the pool workers *and* the in-parent retry path.
"""

import os
import signal
import time

import pytest

from repro.params import paper_defaults
from repro.runner import JobSpec, ResultStore, SweepRunner, canonical_json
from repro.runner.executor import solve_job

SMALL = paper_defaults(k=2, num_threads=2)


def _specs(n_threads=(1, 2, 4, 8), p_remotes=(0.1, 0.2, 0.3)):
    return [
        JobSpec(paper_defaults(k=2, num_threads=n, p_remote=p))
        for n in n_threads
        for p in p_remotes
    ]


# --------------------------------------------------------------- chaos seams
def _sleepy_worker(payload):
    time.sleep(2.0)
    return solve_job(payload)


def _napping_worker(payload):
    """Well within any sane budget per point, but slow enough that a sweep
    of them outlives a short timeout in total."""
    time.sleep(0.2)
    return solve_job(payload)


def _selective_sleeper(payload):
    """Hang only the single-thread point; every other point solves fast."""
    if payload["params"]["workload"]["num_threads"] == 1:
        time.sleep(10.0)
    return solve_job(payload)


def _flaky_worker(payload):
    """Raise on the first two calls (per chaos dir), then solve normally."""
    marker = os.path.join(os.environ["REPRO_TEST_CHAOS_DIR"], "flaky-calls")
    with open(marker, "a") as fh:
        fh.write("x")
    if os.path.getsize(marker) <= 2:
        raise RuntimeError("transient fault")
    return solve_job(payload)


def _crashy_worker(payload):
    """SIGKILL the first worker process that runs (breaks the pool), then
    behave normally -- models a worker dying mid-sweep."""
    marker = os.path.join(os.environ["REPRO_TEST_CHAOS_DIR"], "crashed")
    if not os.path.exists(marker):
        open(marker, "w").close()
        os.kill(os.getpid(), signal.SIGKILL)
    return solve_job(payload)


@pytest.fixture
def chaos_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TEST_CHAOS_DIR", str(tmp_path))
    return tmp_path


# ------------------------------------------------------------------- basics
class TestBasics:
    def test_single_point_matches_direct_solve(self):
        from repro.core import MMSModel

        perf = SweepRunner().solve(SMALL)
        direct = MMSModel(SMALL).solve()
        assert perf.summary() == direct.summary()

    def test_empty_run(self):
        report = SweepRunner().run([])
        assert report.results == []
        assert report.manifest.unique_points == 0
        assert report.manifest.cache_hit_rate == 0.0

    def test_duplicates_solved_once(self):
        spec = JobSpec(SMALL)
        report = SweepRunner().run([spec, spec, spec])
        m = report.manifest
        assert m.total_points == 3 and m.unique_points == 1 and m.solved == 1
        assert not report.results[0].from_cache
        assert report.results[1].from_cache and report.results[2].from_cache
        assert report.results[1].perf.summary() == report.results[0].perf.summary()

    def test_tiny_sweep_stays_serial_despite_jobs(self):
        report = SweepRunner(jobs=4).run(_specs(n_threads=(1,), p_remotes=(0.1,)))
        assert report.manifest.mode == "serial"

    def test_progress_callback(self):
        seen = []
        SweepRunner().run(
            _specs(), progress=lambda done, total, res: seen.append((done, total))
        )
        assert seen == [(i + 1, 12) for i in range(12)]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)
        with pytest.raises(ValueError):
            SweepRunner(retries=-1)


# ------------------------------------------------------------------- caching
class TestCaching:
    def test_cold_then_warm(self, tmp_path):
        specs = _specs()
        cold = SweepRunner(cache_dir=str(tmp_path)).run(specs)
        assert cold.manifest.cache_hits == 0 and cold.manifest.solved == 12

        warm = SweepRunner(cache_dir=str(tmp_path)).run(specs)
        assert warm.manifest.cache_hits == 12 and warm.manifest.solved == 0
        assert warm.manifest.cache_hit_rate == 1.0
        assert all(r.from_cache for r in warm.results)
        # a cache hit is bitwise-indistinguishable from a fresh solve
        assert [canonical_json(r) for r in warm.records()] == [
            canonical_json(r) for r in cold.records()
        ]

    def test_shared_store_object(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = _specs(n_threads=(2, 4), p_remotes=(0.2,))
        SweepRunner(store=store).run(specs)
        report = SweepRunner(store=store).run(specs)
        assert report.manifest.cache_hits == 2
        assert store.stats()["entries"] == 2

    def test_cache_survives_across_processes_format(self, tmp_path):
        """The persisted record is plain JSON a fresh store can serve."""
        specs = _specs(n_threads=(2,), p_remotes=(0.2,))
        SweepRunner(cache_dir=str(tmp_path)).run(specs)
        reopened = ResultStore(tmp_path)
        rec = reopened.get(specs[0].key())
        assert rec is not None and "perf" in rec and "elapsed" in rec

    def test_failures_not_cached(self, tmp_path, chaos_dir):
        # every attempt fails (retries=0 and 2 allowed failures budget)
        runner = SweepRunner(
            cache_dir=str(tmp_path), retries=0, worker=_flaky_worker
        )
        report = runner.run(_specs(n_threads=(2,), p_remotes=(0.2,)))
        assert not report.ok
        assert len(ResultStore(tmp_path)) == 0


# ------------------------------------------------- parallel/serial equality
class TestParallelEquality:
    def test_figure4_sized_sweep_parallel_equals_serial(self):
        """Figure-4 lattice (11 x 16 = 176 points on the 4x4 machine):
        process-pool execution must emit bitwise-identical records."""
        threads = (1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20)
        p_remotes = tuple(round(0.05 * i, 2) for i in range(1, 17))
        specs = [
            JobSpec(paper_defaults(num_threads=n, p_remote=p))
            for n in threads
            for p in p_remotes
        ]
        serial = SweepRunner(jobs=1).run(specs)
        parallel = SweepRunner(jobs=2, min_parallel_points=1).run(specs)
        assert parallel.manifest.mode == "parallel"
        assert [canonical_json(r) for r in parallel.records()] == [
            canonical_json(r) for r in serial.records()
        ]

    def test_parallel_fills_cache_serial_hits_it(self, tmp_path):
        specs = _specs()
        SweepRunner(jobs=2, min_parallel_points=1, cache_dir=str(tmp_path)).run(
            specs
        )
        warm = SweepRunner(jobs=1, cache_dir=str(tmp_path)).run(specs)
        assert warm.manifest.cache_hit_rate == 1.0


# ----------------------------------------------------- failure-path handling
class TestTimeout:
    def test_parallel_timeout_records_failure(self):
        specs = _specs(n_threads=(2, 4), p_remotes=(0.2,))
        runner = SweepRunner(
            jobs=2, min_parallel_points=1, timeout=0.25, worker=_sleepy_worker
        )
        report = runner.run(specs)
        assert not report.ok
        assert report.manifest.timeouts >= 1
        assert any("timeout" in (r.error or "") for r in report.results)

    def test_timeout_budget_is_per_point_not_per_wait(self):
        """N hung points with a T-second timeout expire in ~T-bounded
        staggered waits plus one stall-guard window, not serially at N*T
        (the old semantics restarted the clock at each ``future.result``):
        running points time out as their own budgets expire, and once the
        pool has made no progress for a full budget the never-started
        points fail immediately instead of each waiting T."""
        specs = _specs(n_threads=(2, 3, 4, 5), p_remotes=(0.2,))
        runner = SweepRunner(
            jobs=2, min_parallel_points=1, timeout=0.5, retries=0,
            worker=_sleepy_worker,
        )
        start = time.monotonic()
        report = runner.run(specs)
        wall = time.monotonic() - start
        assert report.manifest.timeouts == 4
        # serialized semantics would cost ~4 * 0.5s of sequential waits
        assert wall < 1.5, f"timeouts serialized: {wall:.2f}s wall"

    def test_queue_wait_does_not_consume_solve_budget(self):
        """A pooled sweep whose *total* wall clock exceeds the per-point
        timeout must not time anything out: the budget clock arms when a
        point starts executing, not at submission, so points queued behind
        a busy pool keep their full solve budget (deadline-from-submission
        semantics spuriously failed every point collected after
        ~timeout)."""
        specs = _specs(n_threads=(1, 2, 3, 4, 5, 6), p_remotes=(0.2,))
        runner = SweepRunner(
            jobs=2, min_parallel_points=1, timeout=0.5, retries=0,
            worker=_napping_worker,
        )
        start = time.monotonic()
        report = runner.run(specs)
        wall = time.monotonic() - start
        # 6 x ~0.2s points on 2 workers: the sweep outlives the budget...
        assert wall > 0.5, f"sweep too fast to exercise the regression: {wall:.2f}s"
        # ...yet every point stayed well inside its own execution budget
        assert report.ok, [r.error for r in report.results if not r.ok]
        assert report.manifest.timeouts == 0

    def test_done_futures_collected_after_a_hung_point(self):
        """One point hangs past its deadline; the points that finished in the
        meantime are still collected as successes, not swept into the
        timeout."""
        specs = _specs(n_threads=(1, 2, 4, 8), p_remotes=(0.2,))
        runner = SweepRunner(
            jobs=2, min_parallel_points=1, timeout=1.5, retries=0,
            worker=_selective_sleeper,
        )
        report = runner.run(specs)
        assert report.manifest.timeouts == 1
        by_ok = {r.params.workload.num_threads: r.ok for r in report.results}
        assert by_ok == {1: False, 2: True, 4: True, 8: True}


class TestRetry:
    def test_transient_failures_retried_to_success(self, chaos_dir):
        runner = SweepRunner(retries=3, worker=_flaky_worker)
        report = runner.run(_specs(n_threads=(2,), p_remotes=(0.2,)))
        assert report.ok
        assert report.results[0].attempts == 3
        assert report.manifest.retries == 2

    def test_retries_exhausted_is_failure(self, chaos_dir):
        runner = SweepRunner(retries=1, worker=_flaky_worker)
        report = runner.run(_specs(n_threads=(2,), p_remotes=(0.2,)))
        assert not report.ok
        assert "transient fault" in report.results[0].error
        assert report.manifest.failures == 1

    def test_parallel_worker_exception_retried_in_parent(self, chaos_dir):
        """A raise in a pool worker consumes one attempt; the bounded retry
        runs in-process and succeeds."""
        specs = _specs()  # 12 points, enough to go parallel
        runner = SweepRunner(
            jobs=2, min_parallel_points=1, retries=2, worker=_flaky_worker
        )
        report = runner.run(specs)
        assert report.ok
        assert report.manifest.retries >= 1


class TestWorkerCrash:
    def test_broken_pool_falls_back_to_serial(self, chaos_dir):
        specs = _specs()
        runner = SweepRunner(jobs=2, min_parallel_points=1, worker=_crashy_worker)
        report = runner.run(specs)
        assert report.ok, [r.error for r in report.results if not r.ok]
        assert report.manifest.mode == "serial-fallback"
        assert report.manifest.worker_crashes == 1


# ----------------------------------------------------------------- manifest
class TestManifest:
    def test_manifest_shape(self, tmp_path):
        report = SweepRunner(cache_dir=str(tmp_path)).run(_specs())
        m = report.manifest.to_dict()
        for field in (
            "solver_version", "jobs", "mode", "total_points", "unique_points",
            "cache_hits", "solved", "failures", "timeouts", "retries",
            "worker_crashes", "wall_clock_s", "cache_hit_rate",
            "point_latency", "store",
        ):
            assert field in m, field
        assert m["point_latency"]["count"] == 12
        assert m["store"]["entries"] == 12

    def test_manifest_json_file(self, tmp_path):
        import json

        report = SweepRunner().run(_specs(n_threads=(2,), p_remotes=(0.2,)))
        out = tmp_path / "manifest.json"
        report.manifest.to_json(out)
        data = json.loads(out.read_text())
        assert data["unique_points"] == 1
