"""ResultStore: persistence, hit/miss accounting, version invalidation."""

import json

from repro.obs import diff_snapshots, registry
from repro.runner import ResultStore


def _rec(n: int) -> dict:
    return {"perf": {"u": n / 10}, "elapsed": 0.01 * n}


class TestPutGet:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k1", _rec(1))
        rec = store.get("k1")
        assert rec["perf"] == {"u": 0.1}
        assert rec["key"] == "k1"

    def test_miss_returns_none(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("nope") is None

    def test_hit_miss_counters(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k1", _rec(1))
        store.get("k1")
        store.get("k2")
        store.get("k1")
        assert store.hits == 2 and store.misses == 1
        assert store.stats()["hit_rate"] == 2 / 3

    def test_put_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k1", _rec(1))
        store.put("k1", _rec(9))  # kept: first write wins
        assert store.get("k1")["perf"] == {"u": 0.1}
        assert len(store) == 1

    def test_contains_and_len(self, tmp_path):
        store = ResultStore(tmp_path)
        assert "k1" not in store and len(store) == 0
        store.put("k1", _rec(1))
        assert "k1" in store and len(store) == 1


class TestPersistence:
    def test_survives_reopen(self, tmp_path):
        with ResultStore(tmp_path) as store:
            for n in range(5):
                store.put(f"k{n}", _rec(n))
        reopened = ResultStore(tmp_path)
        assert len(reopened) == 5
        assert reopened.get("k3")["perf"] == {"u": 0.3}

    def test_index_rebuilt_when_missing(self, tmp_path):
        with ResultStore(tmp_path) as store:
            store.put("k1", _rec(1))
            store.put("k2", _rec(2))
        (tmp_path / "index.json").unlink()
        reopened = ResultStore(tmp_path)
        assert reopened.get("k2")["perf"] == {"u": 0.2}

    def test_stale_index_rebuilt(self, tmp_path):
        """An index whose recorded size mismatches the JSONL is distrusted."""
        with ResultStore(tmp_path) as store:
            store.put("k1", _rec(1))
        # append a record behind the index's back
        extra = {"key": "k2", "solver_version": store.solver_version, **_rec(2)}
        with open(tmp_path / "results.jsonl", "a") as fh:
            fh.write(json.dumps(extra) + "\n")
        reopened = ResultStore(tmp_path)
        assert reopened.get("k2")["perf"] == {"u": 0.2}

    def test_truncated_tail_dropped(self, tmp_path):
        with ResultStore(tmp_path) as store:
            store.put("k1", _rec(1))
        with open(tmp_path / "results.jsonl", "a") as fh:
            fh.write('{"key": "k2", "solver_ver')  # crash mid-append
        (tmp_path / "index.json").unlink()
        reopened = ResultStore(tmp_path)
        assert reopened.get("k1") is not None
        assert reopened.get("k2") is None


class TestVersionInvalidation:
    def test_version_bump_clears_store(self, tmp_path):
        with ResultStore(tmp_path, solver_version="1") as store:
            store.put("k1", _rec(1))
        bumped = ResultStore(tmp_path, solver_version="2")
        assert bumped.invalidated
        assert len(bumped) == 0
        assert bumped.get("k1") is None
        assert not (tmp_path / "results.jsonl").exists()

    def test_same_version_not_invalidated(self, tmp_path):
        with ResultStore(tmp_path, solver_version="1") as store:
            store.put("k1", _rec(1))
        again = ResultStore(tmp_path, solver_version="1")
        assert not again.invalidated and len(again) == 1

    def test_invalidated_store_is_writable_again(self, tmp_path):
        with ResultStore(tmp_path, solver_version="1") as store:
            store.put("k1", _rec(1))
        bumped = ResultStore(tmp_path, solver_version="2")
        bumped.put("k1", _rec(5))
        bumped.flush()
        assert ResultStore(tmp_path, solver_version="2").get("k1")["perf"] == {
            "u": 0.5
        }


class TestObsCounters:
    """The process-wide obs registry mirrors the store's accounting."""

    def _delta(self, before):
        return diff_snapshots(before, registry().snapshot()).get("counters", {})

    def test_cold_run_counts_misses_and_puts(self, tmp_path):
        before = registry().snapshot()
        store = ResultStore(tmp_path)
        assert store.get("k1") is None
        store.put("k1", _rec(1))
        store.put("k2", _rec(2))
        delta = self._delta(before)
        assert delta.get("store.misses", 0) == 1
        assert delta.get("store.puts", 0) == 2
        assert "store.hits" not in delta
        assert "store.invalidations" not in delta

    def test_warm_reads_count_hits(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k1", _rec(1))
        before = registry().snapshot()
        store.get("k1")
        store.get("k1")
        store.get("absent")
        delta = self._delta(before)
        assert delta.get("store.hits", 0) == 2
        assert delta.get("store.misses", 0) == 1

    def test_version_bump_counts_one_invalidation(self, tmp_path):
        with ResultStore(tmp_path, solver_version="1") as store:
            store.put("k1", _rec(1))
        before = registry().snapshot()
        bumped = ResultStore(tmp_path, solver_version="2")
        assert bumped.invalidated
        delta = self._delta(before)
        assert delta.get("store.invalidations", 0) == 1
        # the wiped entry is gone, and looking for it is a miss
        assert bumped.get("k1") is None
        assert self._delta(before).get("store.misses", 0) == 1
