"""Tests for the extended CLI commands (sensitivity, zones, replicate, json)."""

import json

import pytest

from repro.cli import main


class TestSensitivityCommand:
    def test_runs(self, capsys):
        assert main(["sensitivity", "--k", "2", "--nt", "2"]) == 0
        out = capsys.readouterr().out
        assert "elasticity" in out
        assert "runlength" in out

    def test_measure_flag(self, capsys):
        assert (
            main(["sensitivity", "--k", "2", "--measure", "lambda_net"]) == 0
        )
        assert "lambda_net" in capsys.readouterr().out


class TestZonesCommand:
    def test_default_axis(self, capsys):
        assert main(["zones"]) == 0
        out = capsys.readouterr().out
        assert "p_remote" in out
        assert "crosses 0.8" in out

    def test_memory_subsystem(self, capsys):
        assert (
            main(
                [
                    "zones",
                    "--subsystem",
                    "memory",
                    "--axis",
                    "memory_latency",
                    "--nt",
                    "2",
                    "--hi",
                    "100",
                ]
            )
            == 0
        )
        assert "tol_memory" in capsys.readouterr().out


class TestReplicateCommand:
    def test_runs(self, capsys):
        assert (
            main(
                [
                    "replicate",
                    "--k",
                    "2",
                    "--nt",
                    "2",
                    "--replications",
                    "2",
                    "--duration",
                    "2000",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "replications" in out
        assert "U_p" in out


class TestJsonExport:
    def test_experiment_json(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        assert main(["experiment", "claims", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert "rows" in data
        assert len(data["rows"]) == 10

    def test_json_handles_numpy_and_objects(self, tmp_path):
        """ext experiments carry numpy arrays and rich result objects."""
        from repro.cli import _jsonable

        import numpy as np

        blob = {
            "arr": np.arange(3),
            "np_float": np.float64(1.5),
            "nested": [np.int64(2), {"x": None}],
        }
        out = _jsonable(blob)
        json.dumps(out)  # must be serializable
        assert out["arr"] == [0, 1, 2]
        assert out["np_float"] == 1.5


class TestMemoryPortsFlag:
    def test_solve_with_ports(self, capsys):
        assert main(["solve", "--k", "2", "--memory-ports", "2"]) == 0
        assert "U_p" in capsys.readouterr().out


class TestReproduceAll:
    def test_writes_outputs(self, tmp_path, capsys, monkeypatch):
        """Drive the full-reproduction command against a stub registry so
        the test stays fast while the wiring is exercised for real."""
        import repro.cli as cli
        from repro.analysis import headline_claims

        monkeypatch.setattr(cli, "EXPERIMENTS", {"claims": headline_claims})
        out = tmp_path / "repro"
        assert main(["reproduce-all", "--out", str(out), "--skip-slow"]) == 0
        assert (out / "claims.txt").exists()
        assert (out / "SUMMARY.txt").exists()
        assert "claims" in (out / "SUMMARY.txt").read_text()
