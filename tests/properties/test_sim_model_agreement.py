"""Property-based agreement between the analytical model and the simulator.

The strongest end-to-end property in the repository: for *random* small
machine/workload configurations, the Bard-Schweitzer prediction and the
discrete-event simulation must agree on utilization and access rate within
a statistical band.  Hypothesis explores corners (tiny runlengths, extreme
p_remote, lopsided rectangles) that the fixed-seed tests never visit.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import MMSModel
from repro.params import paper_defaults
from repro.simulation import simulate

config_st = st.fixed_dictionaries(
    {
        "k": st.sampled_from([2, 3]),
        "num_threads": st.integers(min_value=1, max_value=6),
        "runlength": st.sampled_from([2.0, 5.0, 10.0, 25.0]),
        "p_remote": st.sampled_from([0.0, 0.1, 0.3, 0.6, 0.9]),
        "memory_latency": st.sampled_from([2.0, 10.0, 20.0]),
        "switch_delay": st.sampled_from([1.0, 10.0]),
        "pattern": st.sampled_from(["geometric", "uniform"]),
    }
)


class TestSimModelAgreement:
    @given(over=config_st)
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_utilization_and_rate(self, over):
        params = paper_defaults(**over)
        perf = MMSModel(params).solve()
        sim = simulate(params, duration=12_000.0, seed=99)
        # generous statistical band: short horizon + BS approximation error
        assert sim.processor_utilization == pytest.approx(
            perf.processor_utilization, rel=0.12, abs=0.02
        )
        assert sim.access_rate == pytest.approx(
            perf.access_rate, rel=0.12, abs=0.002
        )

    @given(over=config_st)
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_latencies(self, over):
        params = paper_defaults(**over)
        perf = MMSModel(params).solve()
        sim = simulate(params, duration=12_000.0, seed=7)
        if perf.lambda_net > 1e-4:  # enough remote traffic to estimate S_obs
            assert sim.s_obs == pytest.approx(perf.s_obs, rel=0.25)
        assert sim.l_obs == pytest.approx(perf.l_obs, rel=0.2, abs=0.5)
