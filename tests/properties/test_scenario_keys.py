"""Property: scenario cache keys are injective across (scenario, params).

The registry's whole cache-safety story rests on two facts, pinned here
over randomized parameter points:

* the torus key is **exactly** the pre-registry SHA-256 formula (so every
  historical store entry, journal signature, and fabric experiment
  signature stays valid), and
* any two job specs that differ in scenario or in any parameter hash to
  different keys, while re-spellings of the same computation (``"auto"``
  vs the canonical method, payload round-trips) hash to the same key.
"""

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.params import paper_defaults
from repro.runner.spec import JobSpec, canonical_json
from repro.scenarios import WorkStealParams
from repro.scenarios.hier import HierParams

torus_st = st.fixed_dictionaries(
    {
        "num_threads": st.integers(min_value=1, max_value=12),
        "p_remote": st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
        "runlength": st.floats(min_value=1.0, max_value=50.0, allow_nan=False),
    }
).map(lambda over: paper_defaults(**over))

worksteal_st = st.fixed_dictionaries(
    {
        "num_workers": st.integers(min_value=1, max_value=64),
        "total_work": st.floats(
            min_value=1.0, max_value=1e6, allow_nan=False
        ),
        "latency": st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
        "placement": st.sampled_from(["single", "spread"]),
    }
).map(lambda kw: WorkStealParams(**kw))

hier_st = st.fixed_dictionaries(
    {
        "clusters": st.integers(min_value=1, max_value=4),
        "cluster_size": st.integers(min_value=1, max_value=4),
        "num_threads": st.integers(min_value=1, max_value=8),
        "inter_delay": st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    }
).map(lambda kw: HierParams(**kw))

any_params_st = st.one_of(torus_st, worksteal_st, hier_st)


class TestKeyInjectivity:
    @given(a=any_params_st, b=any_params_st)
    @settings(max_examples=120, deadline=None)
    def test_keys_equal_iff_same_computation(self, a, b):
        spec_a = JobSpec(params=a)
        spec_b = JobSpec(params=b)
        same = (
            spec_a.scenario == spec_b.scenario
            and a.to_dict() == b.to_dict()
        )
        assert (spec_a.key() == spec_b.key()) == same

    @given(params=st.one_of(worksteal_st, hier_st))
    @settings(max_examples=40, deadline=None)
    def test_non_torus_payload_names_its_scenario(self, params):
        payload = JobSpec(params=params).payload()
        assert payload["scenario"] != "torus"

    @given(params=any_params_st)
    @settings(max_examples=60, deadline=None)
    def test_payload_round_trip_preserves_key(self, params):
        spec = JobSpec(params=params)
        rebuilt = JobSpec.from_payload(spec.payload())
        assert rebuilt.key() == spec.key()
        assert rebuilt.scenario == spec.scenario


class TestTorusKeyFormula:
    @given(params=torus_st)
    @settings(max_examples=60, deadline=None)
    def test_torus_key_is_the_pre_registry_sha(self, params):
        spec = JobSpec(params=params)
        expected = hashlib.sha256(
            canonical_json(
                {"method": spec.canonical_method(), "params": params.to_dict()}
            ).encode("utf-8")
        ).hexdigest()
        assert spec.key() == expected

    @given(params=torus_st)
    @settings(max_examples=40, deadline=None)
    def test_auto_and_canonical_spelling_share_a_key(self, params):
        auto = JobSpec(params=params, method="auto")
        explicit = JobSpec(params=params, method=auto.canonical_method())
        assert auto.key() == explicit.key()
