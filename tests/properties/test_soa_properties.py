"""Property tests for the structure-of-arrays kernel layer.

Three invariants the kernel refactor promised, checked on arbitrary
batches:

* **pack/unpack round trip** -- ``SymmetricSoA.pack`` /
  ``MulticlassSoA.from_networks`` followed by ``point(i)`` returns the
  input arrays bitwise (including the Seidmann multi-server split being
  the exact ``s/n`` + ``s(n-1)/n`` decomposition);
* **batch invariance at the kernel seam** -- permuting a batch permutes
  the fixed-point outputs bitwise, and solving any slot alone is bitwise
  equal to solving it inside the batch;
* **shared-memory handoff** -- arrays that travel through
  ``SharedArrays``/``attach_arrays`` come back bitwise equal to a pickle
  round trip of the same arrays.
"""

from __future__ import annotations

import pickle

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.kernels import MulticlassSoA, SymmetricSoA, reference
from repro.queueing.kernels.shm import SharedArrays, attach_arrays
from repro.queueing.network import ClosedNetwork

finite = dict(allow_nan=False, allow_infinity=False)

TOL = 1e-12
MAX_ITER = 100_000


@st.composite
def symmetric_inputs(draw, with_servers=True):
    """Raw (visits, service, types, pops, servers) for SymmetricSoA.pack."""
    m = draw(st.integers(min_value=2, max_value=6))
    b = draw(st.integers(min_value=1, max_value=6))
    types = np.array(
        draw(st.lists(st.integers(min_value=0, max_value=2), min_size=m, max_size=m))
    )
    visits = np.array(
        [
            [1.0]
            + draw(
                st.lists(
                    st.one_of(
                        st.just(0.0),
                        st.floats(min_value=0.05, max_value=2.0, **finite),
                    ),
                    min_size=m - 1,
                    max_size=m - 1,
                )
            )
            for _ in range(b)
        ]
    )
    service = np.array(
        draw(
            st.lists(
                st.lists(
                    st.one_of(
                        st.just(0.0),
                        st.floats(min_value=0.1, max_value=15.0, **finite),
                    ),
                    min_size=m,
                    max_size=m,
                ),
                min_size=b,
                max_size=b,
            )
        )
    )
    pops = np.array(
        draw(st.lists(st.integers(min_value=0, max_value=8), min_size=b, max_size=b))
    )
    servers = None
    if with_servers and draw(st.booleans()):
        servers = np.array(
            draw(
                st.lists(
                    st.lists(
                        st.integers(min_value=1, max_value=4),
                        min_size=m,
                        max_size=m,
                    ),
                    min_size=b,
                    max_size=b,
                )
            ),
            dtype=np.float64,
        )
    return visits, service, types, pops, servers


class TestPackRoundTrip:
    @given(inputs=symmetric_inputs())
    @settings(max_examples=50, deadline=None)
    def test_symmetric_pack_point_bitwise(self, inputs):
        visits, service, types, pops, servers = inputs
        soa = SymmetricSoA.pack(visits, service, types, pops, servers=servers)
        assert soa.batch == len(pops)
        for i in range(soa.batch):
            pt = soa.point(i)
            assert np.array_equal(pt["visits"], visits[i])
            assert np.array_equal(pt["station_type"], types)
            assert int(pt["population"]) == int(pops[i])
            if servers is None:
                assert np.array_equal(pt["service"], service[i])
                assert not pt["extra"].any()
            else:
                # the Seidmann split is the exact s/n + s(n-1)/n pair
                assert np.array_equal(pt["service"], service[i] / servers[i])
                assert np.array_equal(
                    pt["extra"], service[i] * (servers[i] - 1.0) / servers[i]
                )

    @given(inputs=symmetric_inputs(with_servers=False))
    @settings(max_examples=30, deadline=None)
    def test_multiclass_from_networks_point_bitwise(self, inputs):
        visits, service, _types, pops, _ = inputs
        nets = [
            ClosedNetwork(
                visits=v[None, :],
                service=s,
                populations=np.array([int(n)]),
            )
            for v, s, n in zip(visits, service, pops)
        ]
        soa = MulticlassSoA.from_networks(nets)
        assert soa.batch == len(nets)
        for i, net in enumerate(nets):
            pt = soa.point(i)
            sq, extra = net.seidmann_split()
            assert np.array_equal(pt["visits"], net.visits)
            assert np.array_equal(pt["service"], sq)
            assert np.array_equal(pt["extra"], extra)
            assert np.array_equal(pt["queueing"], net.queueing_mask())


def _rows(res):
    return res.q, res.w, res.x, res.iterations, res.residual, res.converged


class TestBatchInvariance:
    @given(inputs=symmetric_inputs(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_permutation_equivariance(self, inputs, data):
        visits, service, types, pops, servers = inputs
        perm = np.array(data.draw(st.permutations(range(len(pops)))))
        soa = SymmetricSoA.pack(visits, service, types, pops, servers=servers)
        psoa = SymmetricSoA.pack(
            visits[perm],
            service[perm],
            types,
            pops[perm],
            servers=None if servers is None else servers[perm],
        )
        base = reference.symmetric_fixed_point(soa, TOL, MAX_ITER)
        permuted = reference.symmetric_fixed_point(psoa, TOL, MAX_ITER)
        for got, want in zip(_rows(permuted), _rows(base)):
            assert np.array_equal(got, want[perm])

    @given(inputs=symmetric_inputs(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_singleton_composition_bitwise(self, inputs, data):
        visits, service, types, pops, servers = inputs
        i = data.draw(st.integers(min_value=0, max_value=len(pops) - 1))
        soa = SymmetricSoA.pack(visits, service, types, pops, servers=servers)
        alone = SymmetricSoA.pack(
            visits[i : i + 1],
            service[i : i + 1],
            types,
            pops[i : i + 1],
            servers=None if servers is None else servers[i : i + 1],
        )
        batch = reference.symmetric_fixed_point(soa, TOL, MAX_ITER)
        single = reference.symmetric_fixed_point(alone, TOL, MAX_ITER)
        for got, want in zip(_rows(single), _rows(batch)):
            assert np.array_equal(got[0], want[i])


@st.composite
def array_payloads(draw):
    """A name -> array dict mixing the dtypes the executor actually ships."""
    b = draw(st.integers(min_value=1, max_value=8))
    m = draw(st.integers(min_value=1, max_value=12))
    floats = st.floats(min_value=-1e12, max_value=1e12, **finite)
    payload = {
        "visits": np.array(
            draw(
                st.lists(
                    st.lists(floats, min_size=m, max_size=m),
                    min_size=b,
                    max_size=b,
                )
            )
        ),
        "iterations": np.array(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=2**31),
                    min_size=b,
                    max_size=b,
                )
            ),
            dtype=np.int64,
        ),
        "converged": np.array(
            draw(st.lists(st.booleans(), min_size=b, max_size=b))
        ),
    }
    return payload


class TestShmHandoff:
    @given(payload=array_payloads())
    @settings(max_examples=25, deadline=None)
    def test_shm_round_trip_bitwise_equals_pickle(self, payload):
        via_pickle = pickle.loads(pickle.dumps(payload))
        shm = SharedArrays(payload)
        try:
            via_shm = attach_arrays(shm.meta)
        finally:
            shm.unlink()
        assert set(via_shm) == set(payload)
        for name in payload:
            assert via_shm[name].dtype == via_pickle[name].dtype
            assert np.array_equal(via_shm[name], via_pickle[name])

    def test_attached_copies_survive_unlink(self):
        payload = {"x": np.arange(12, dtype=np.float64).reshape(3, 4)}
        shm = SharedArrays(payload)
        got = attach_arrays(shm.meta)
        shm.unlink()
        shm.unlink()  # idempotent
        assert np.array_equal(got["x"], payload["x"])
