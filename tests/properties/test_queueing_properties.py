"""Property-based tests (hypothesis) for the queueing substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing import (
    ClosedNetwork,
    balanced_job_bounds,
    bard_schweitzer,
    exact_mva_single_class,
    solve_symmetric,
)

demands_st = st.lists(
    st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    min_size=1,
    max_size=6,
)
pop_st = st.integers(min_value=1, max_value=12)


def single_class(demands, n):
    return ClosedNetwork(
        visits=np.ones((1, len(demands))),
        service=np.array(demands),
        populations=np.array([n]),
    )


class TestExactMVAProperties:
    @given(demands=demands_st, n=pop_st)
    @settings(max_examples=60, deadline=None)
    def test_population_conservation(self, demands, n):
        sol = exact_mva_single_class(single_class(demands, n))
        assert sol.population_residual() < 1e-8

    @given(demands=demands_st, n=pop_st)
    @settings(max_examples=60, deadline=None)
    def test_littles_law(self, demands, n):
        sol = exact_mva_single_class(single_class(demands, n))
        assert sol.littles_law_residual() < 1e-9

    @given(demands=demands_st, n=pop_st)
    @settings(max_examples=60, deadline=None)
    def test_utilization_bounded(self, demands, n):
        sol = exact_mva_single_class(single_class(demands, n))
        assert (sol.total_utilization <= 1.0 + 1e-9).all()

    @given(demands=demands_st, n=pop_st)
    @settings(max_examples=40, deadline=None)
    def test_throughput_monotone_in_population(self, demands, n):
        x_n = exact_mva_single_class(single_class(demands, n)).throughput[0]
        x_n1 = exact_mva_single_class(single_class(demands, n + 1)).throughput[0]
        assert x_n1 >= x_n - 1e-12

    @given(demands=demands_st, n=pop_st)
    @settings(max_examples=40, deadline=None)
    def test_balanced_job_bounds_bracket(self, demands, n):
        x = exact_mva_single_class(single_class(demands, n)).throughput[0]
        lo, hi = balanced_job_bounds(np.ones(len(demands)), np.array(demands), n)
        assert lo - 1e-9 <= x <= hi + 1e-9


class TestBardSchweitzerProperties:
    @given(demands=demands_st, n=pop_st)
    @settings(max_examples=60, deadline=None)
    def test_close_to_exact(self, demands, n):
        net = single_class(demands, n)
        bs = bard_schweitzer(net).throughput[0]
        ex = exact_mva_single_class(net).throughput[0]
        assert bs == pytest.approx(ex, rel=0.12)

    @given(demands=demands_st, n=pop_st)
    @settings(max_examples=60, deadline=None)
    def test_population_conservation(self, demands, n):
        sol = bard_schweitzer(single_class(demands, n))
        assert sol.converged
        assert sol.population_residual() < 1e-6

    @given(
        demands=demands_st,
        n=pop_st,
        classes=st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_multiclass_symmetric_classes_equal(self, demands, n, classes):
        """Identical classes must get identical solutions."""
        m = len(demands)
        net = ClosedNetwork(
            visits=np.ones((classes, m)),
            service=np.array(demands),
            populations=np.full(classes, n),
        )
        sol = bard_schweitzer(net)
        assert np.allclose(sol.throughput, sol.throughput[0], rtol=1e-8)


class TestSymmetricSolverProperties:
    @given(
        visits=st.lists(
            st.one_of(
                st.just(0.0),
                st.floats(min_value=0.01, max_value=3.0, allow_nan=False),
            ),
            min_size=2,
            max_size=8,
        ),
        service=st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
        n=pop_st,
    )
    @settings(max_examples=60, deadline=None)
    def test_population_conservation(self, visits, service, n):
        v = np.array(visits)
        if v.sum() == 0:
            v[0] = 1.0
        s = np.full(len(v), service)
        types = np.arange(len(v)) % 3
        sol = solve_symmetric(v, s, types, n)
        assert sol.converged
        assert sol.queue_length.sum() == pytest.approx(n, abs=1e-6)

    @given(n=pop_st)
    @settings(max_examples=20, deadline=None)
    def test_two_station_closed_form(self, n):
        """Balanced 2-station (own types): X = n/(D(n+1))."""
        v = np.array([1.0, 1.0])
        s = np.array([2.0, 2.0])
        sol = solve_symmetric(v, s, np.array([0, 1]), n)
        assert sol.throughput == pytest.approx(n / (2.0 * (n + 1)), rel=1e-6)
