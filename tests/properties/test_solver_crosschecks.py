"""Property-based cross-checks between independent solver implementations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing import (
    ClosedNetwork,
    StationKind,
    convolution_solve,
    exact_mva_single_class,
)

demands_st = st.lists(
    st.floats(min_value=0.1, max_value=8.0, allow_nan=False),
    min_size=1,
    max_size=5,
)
pop_st = st.integers(min_value=0, max_value=15)


def single_class(demands, n, kinds=()):
    return ClosedNetwork(
        visits=np.ones((1, len(demands))),
        service=np.array(demands),
        populations=np.array([n]),
        kinds=kinds,
    )


class TestConvolutionEqualsMVA:
    """Two exact algorithms sharing no code must agree bit-for-bit-ish."""

    @given(demands=demands_st, n=pop_st)
    @settings(max_examples=80, deadline=None)
    def test_throughput(self, demands, n):
        net = single_class(demands, n)
        x_conv = convolution_solve(net).throughput[0]
        x_mva = exact_mva_single_class(net).throughput[0]
        assert x_conv == pytest.approx(x_mva, rel=1e-9, abs=1e-12)

    @given(demands=demands_st, n=st.integers(min_value=1, max_value=12))
    @settings(max_examples=60, deadline=None)
    def test_queue_lengths(self, demands, n):
        net = single_class(demands, n)
        q_conv = convolution_solve(net).queue_length
        q_mva = exact_mva_single_class(net).queue_length
        assert np.allclose(q_conv, q_mva, rtol=1e-7, atol=1e-9)

    @given(
        demands=st.lists(
            st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
            min_size=2,
            max_size=4,
        ),
        n=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_with_a_delay_station(self, demands, n):
        kinds = tuple(
            StationKind.DELAY if i == 0 else StationKind.QUEUEING
            for i in range(len(demands))
        )
        net = single_class(demands, n, kinds)
        x_conv = convolution_solve(net).throughput[0]
        x_mva = exact_mva_single_class(net).throughput[0]
        assert x_conv == pytest.approx(x_mva, rel=1e-9)


class TestMultiServerProperties:
    @given(
        demand=st.floats(min_value=0.5, max_value=8.0, allow_nan=False),
        n=st.integers(min_value=1, max_value=12),
        m=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_throughput_monotone_in_servers(self, demand, n, m):
        def x(servers):
            net = ClosedNetwork(
                visits=np.ones((1, 2)),
                service=np.array([demand, 1.0]),
                populations=np.array([n]),
                servers=(servers, 1),
            )
            return exact_mva_single_class(net).throughput[0]

        assert x(m + 1) >= x(m) - 1e-12

    @given(
        demand=st.floats(min_value=0.5, max_value=8.0, allow_nan=False),
        n=st.integers(min_value=1, max_value=12),
        m=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_capacity_bound_respected(self, demand, n, m):
        net = ClosedNetwork(
            visits=np.ones((1, 1)),
            service=np.array([demand]),
            populations=np.array([n]),
            servers=(m,),
        )
        x = exact_mva_single_class(net).throughput[0]
        assert x <= m / demand + 1e-9

    @given(
        n=st.integers(min_value=1, max_value=10),
        m=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_n1_independent_of_servers(self, n, m):
        """A single customer never queues: servers are irrelevant at N=1."""
        del n  # strategy kept for shrink diversity

        def x(servers):
            net = ClosedNetwork(
                visits=np.ones((1, 2)),
                service=np.array([3.0, 1.0]),
                populations=np.array([1]),
                servers=(servers, 1),
            )
            return exact_mva_single_class(net).throughput[0]

        assert x(m) == pytest.approx(x(1), rel=1e-12)
