"""Property-based tests for workload structures (visit ratios, patterns)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import Torus2D
from repro.workload import (
    GeometricPattern,
    IsoWorkPartitioning,
    UniformPattern,
    build_visit_ratios,
    coalesce,
    make_pattern,
)
from repro.params import Workload

torus_st = st.sampled_from([Torus2D(2), Torus2D(3), Torus2D(4), Torus2D(3, 5)])
p_remote_st = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
pattern_st = st.one_of(
    st.floats(min_value=0.05, max_value=1.0, allow_nan=False).map(GeometricPattern),
    st.just(UniformPattern()),
)


class TestVisitRatioInvariants:
    @given(torus=torus_st, p=p_remote_st, pattern=pattern_st)
    @settings(max_examples=80, deadline=None)
    def test_one_memory_access_per_cycle(self, torus, p, pattern):
        vr = build_visit_ratios(torus, p, pattern)
        assert np.allclose(vr.memory.sum(axis=1), 1.0)

    @given(torus=torus_st, p=p_remote_st, pattern=pattern_st)
    @settings(max_examples=80, deadline=None)
    def test_outbound_total(self, torus, p, pattern):
        vr = build_visit_ratios(torus, p, pattern)
        assert np.allclose(vr.outbound.sum(axis=1), 2.0 * p, atol=1e-12)

    @given(torus=torus_st, p=p_remote_st, pattern=pattern_st)
    @settings(max_examples=80, deadline=None)
    def test_inbound_total_is_two_p_davg(self, torus, p, pattern):
        vr = build_visit_ratios(torus, p, pattern)
        if p == 0.0:
            assert vr.inbound.sum() == 0.0
        else:
            expected = 2.0 * p * pattern.d_avg(torus)
            assert np.allclose(vr.inbound.sum(axis=1), expected, rtol=1e-9)

    @given(torus=torus_st, p=p_remote_st, pattern=pattern_st)
    @settings(max_examples=50, deadline=None)
    def test_translation_symmetry(self, torus, p, pattern):
        vr = build_visit_ratios(torus, p, pattern)
        b = torus.num_nodes // 2
        perm = [torus.translate(n, b) for n in range(torus.num_nodes)]
        for arr in (vr.memory, vr.inbound, vr.outbound):
            assert np.allclose(arr[b, perm], arr[0], atol=1e-12)

    @given(torus=torus_st, p=p_remote_st, pattern=pattern_st)
    @settings(max_examples=50, deadline=None)
    def test_all_ratios_nonnegative(self, torus, p, pattern):
        vr = build_visit_ratios(torus, p, pattern)
        assert (vr.memory >= 0).all()
        assert (vr.inbound >= 0).all()
        assert (vr.outbound >= 0).all()


class TestPatternInvariants:
    @given(torus=torus_st, pattern=pattern_st)
    @settings(max_examples=60, deadline=None)
    def test_module_probabilities_sum_to_one(self, torus, pattern):
        mat = pattern.module_probability_matrix(torus)
        assert np.allclose(mat.sum(axis=1), 1.0)
        assert np.allclose(np.diag(mat), 0.0)

    @given(torus=torus_st, pattern=pattern_st)
    @settings(max_examples=60, deadline=None)
    def test_distance_pmf_valid(self, torus, pattern):
        pmf = pattern.distance_pmf(torus)
        assert pmf.sum() == pytest.approx(1.0)
        assert (pmf >= 0).all()
        assert pmf[0] == 0.0


class TestPartitioningInvariants:
    @given(
        work=st.floats(min_value=1.0, max_value=1000.0, allow_nan=False),
        nt=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=80, deadline=None)
    def test_iso_work_exact(self, work, nt):
        wl = IsoWorkPartitioning(work).workload(nt)
        assert wl.num_threads * wl.runlength == pytest.approx(work)

    @given(
        nt=st.integers(min_value=1, max_value=64),
        r=st.floats(min_value=0.5, max_value=100.0, allow_nan=False),
        factor=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=80, deadline=None)
    def test_coalesce_preserves_work(self, nt, r, factor):
        wl = Workload(num_threads=nt, runlength=r)
        c = coalesce(wl, factor)
        assert c.num_threads * c.runlength == pytest.approx(nt * r)
        assert 1 <= c.num_threads <= nt

    @given(name=st.sampled_from(["geometric", "uniform"]))
    def test_factory_roundtrip(self, name):
        assert make_pattern(name).distance_pmf(Torus2D(4)).sum() == pytest.approx(
            1.0
        )
