"""Property-based tests for the MMS model and tolerance metric."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MMSModel,
    lambda_net_saturation,
    memory_tolerance,
    network_tolerance,
    saturation_utilization,
)
from repro.params import paper_defaults
from repro.workload import make_pattern

params_st = st.fixed_dictionaries(
    {
        "k": st.sampled_from([2, 3, 4]),
        "num_threads": st.integers(min_value=1, max_value=12),
        "runlength": st.floats(min_value=1.0, max_value=50.0, allow_nan=False),
        "p_remote": st.one_of(
            st.just(0.0), st.floats(min_value=1e-3, max_value=0.9, allow_nan=False)
        ),
        "p_sw": st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
        "memory_latency": st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
        "switch_delay": st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
        "pattern": st.sampled_from(["geometric", "uniform"]),
    }
)


class TestModelInvariants:
    @given(over=params_st)
    @settings(max_examples=80, deadline=None)
    def test_utilization_in_unit_interval(self, over):
        perf = MMSModel(paper_defaults(**over)).solve()
        assert 0.0 <= perf.processor_utilization <= 1.0 + 1e-9

    @given(over=params_st)
    @settings(max_examples=80, deadline=None)
    def test_subsystem_utilizations_bounded(self, over):
        perf = MMSModel(paper_defaults(**over)).solve()
        for sub in (perf.processor, perf.memory, perf.inbound, perf.outbound):
            assert -1e-9 <= sub.utilization <= 1.0 + 1e-9

    @given(over=params_st)
    @settings(max_examples=80, deadline=None)
    def test_latencies_at_least_service(self, over):
        perf = MMSModel(paper_defaults(**over)).solve()
        assert perf.l_obs >= over["memory_latency"] - 1e-9
        if over["p_remote"] > 0 and over["switch_delay"] > 0:
            # one-way trip visits >= 2 switches (out + in)
            assert perf.s_obs >= 2 * over["switch_delay"] - 1e-9

    @given(over=params_st)
    @settings(max_examples=60, deadline=None)
    def test_lambda_net_below_saturation(self, over):
        params = paper_defaults(**over)
        perf = MMSModel(params).solve()
        assert perf.lambda_net <= lambda_net_saturation(params) * (1 + 1e-6)

    @given(over=params_st)
    @settings(max_examples=60, deadline=None)
    def test_up_below_bottleneck_ceiling(self, over):
        params = paper_defaults(**over)
        perf = MMSModel(params).solve()
        assert perf.processor_utilization <= saturation_utilization(params) + 1e-6

    @given(over=params_st)
    @settings(max_examples=40, deadline=None)
    def test_symmetric_equals_full_amva(self, over):
        params = paper_defaults(**over)
        model = MMSModel(params)
        sym = model.solve(method="symmetric")
        full = model.solve(method="amva")
        assert sym.processor_utilization == pytest.approx(
            full.processor_utilization, rel=1e-5, abs=1e-10
        )

    @given(over=params_st)
    @settings(max_examples=40, deadline=None)
    def test_cycle_conservation(self, over):
        """Total residence over a cycle equals n_t / lambda (Little)."""
        params = paper_defaults(**over)
        model = MMSModel(params)
        from repro.queueing import solve_symmetric

        v, s, t, srv = model.station_arrays()
        sol = solve_symmetric(v, s, t, params.workload.num_threads)
        if sol.throughput > 0:
            assert float(np.dot(v, sol.waiting)) == pytest.approx(
                params.workload.num_threads / sol.throughput, rel=1e-8
            )


class TestToleranceInvariants:
    @given(over=params_st)
    @settings(max_examples=50, deadline=None)
    def test_network_tolerance_in_unit_interval(self, over):
        """Product-form monotonicity: zero-delay ideal is an upper bound."""
        res = network_tolerance(paper_defaults(**over))
        assert 0.0 < res.index <= 1.0 + 1e-6

    @given(over=params_st)
    @settings(max_examples=50, deadline=None)
    def test_memory_tolerance_in_unit_interval(self, over):
        res = memory_tolerance(paper_defaults(**over))
        assert 0.0 < res.index <= 1.0 + 1e-6

    @given(over=params_st)
    @settings(max_examples=30, deadline=None)
    def test_zero_switch_delay_gives_tolerance_one(self, over):
        over = dict(over)
        over["switch_delay"] = 0.0
        res = network_tolerance(paper_defaults(**over))
        assert res.index == pytest.approx(1.0, abs=1e-9)


class TestPatternInvariants:
    @given(
        k=st.sampled_from([2, 3, 4, 5, 6]),
        p_sw=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_geometric_davg_bounded_by_uniform(self, k, p_sw):
        """Locality can only shorten trips (up to the p_sw=1 extreme,
        where geometric weighs distance classes evenly -- still <= the
        count-weighted uniform mean only when far classes are rarer...
        so assert against the diameter instead)."""
        from repro.topology import Torus2D

        t = Torus2D(k)
        d = make_pattern("geometric", p_sw).d_avg(t)
        assert 1.0 <= d <= t.max_distance

    @given(k=st.sampled_from([2, 3, 4, 5, 6, 8]))
    @settings(max_examples=20, deadline=None)
    def test_uniform_davg_range(self, k):
        from repro.topology import Torus2D

        t = Torus2D(k)
        d = make_pattern("uniform").d_avg(t)
        assert 1.0 <= d <= t.max_distance
