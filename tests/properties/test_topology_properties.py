"""Property-based tests for topologies (torus and mesh) and routing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import Mesh2D, Torus2D, route, route_nodes

dims_st = st.tuples(
    st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6)
)
topology_st = st.one_of(
    dims_st.map(lambda d: Torus2D(*d)),
    dims_st.map(lambda d: Mesh2D(*d)),
)


class TestDistanceProperties:
    @given(topo=topology_st)
    @settings(max_examples=60, deadline=None)
    def test_metric_axioms(self, topo):
        d = topo.distance_matrix
        assert np.all(np.diag(d) == 0)
        assert np.array_equal(d, d.T)
        assert np.all(d >= 0)

    @given(topo=topology_st, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_triangle_inequality(self, topo, data):
        n = topo.num_nodes
        a = data.draw(st.integers(0, n - 1))
        b = data.draw(st.integers(0, n - 1))
        c = data.draw(st.integers(0, n - 1))
        d = topo.distance_matrix
        assert d[a, c] <= d[a, b] + d[b, c]

    @given(dims=dims_st)
    @settings(max_examples=40, deadline=None)
    def test_torus_dominated_by_mesh(self, dims):
        """Wrap-around links can only shorten distances."""
        t, m = Torus2D(*dims), Mesh2D(*dims)
        assert np.all(t.distance_matrix <= m.distance_matrix)

    @given(topo=topology_st)
    @settings(max_examples=40, deadline=None)
    def test_max_distance_attained(self, topo):
        assert topo.distance_matrix.max() == topo.max_distance


class TestRoutingProperties:
    @given(topo=topology_st, data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_route_is_minimal_and_connected(self, topo, data):
        n = topo.num_nodes
        s = data.draw(st.integers(0, n - 1))
        d = data.draw(st.integers(0, n - 1))
        r = route(topo, s, d)
        assert r[0] == s and r[-1] == d
        assert len(r) == topo.distance(s, d) + 1
        for a, b in zip(r, r[1:]):
            assert topo.distance(a, b) == 1

    @given(topo=topology_st, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_route_nodes_consistent(self, topo, data):
        n = topo.num_nodes
        s = data.draw(st.integers(0, n - 1))
        d = data.draw(st.integers(0, n - 1))
        rn = route_nodes(topo, s, d)
        assert len(rn) == topo.distance(s, d)
        if rn:
            assert rn[-1] == d


class TestPatternOnTopologyProperties:
    @given(
        topo=st.one_of(
            st.tuples(
                st.integers(min_value=2, max_value=5),
                st.integers(min_value=1, max_value=5),
            ).map(lambda d: Torus2D(*d)),
            st.tuples(
                st.integers(min_value=2, max_value=5),
                st.integers(min_value=1, max_value=5),
            ).map(lambda d: Mesh2D(*d)),
        ),
        p_sw=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_geometric_rows_valid(self, topo, p_sw):
        from repro.workload import GeometricPattern

        q = GeometricPattern(p_sw).module_probability_matrix(topo)
        assert np.allclose(q.sum(axis=1), 1.0)
        assert np.allclose(np.diag(q), 0.0)
        assert (q >= 0).all()

    @given(
        k=st.integers(min_value=2, max_value=5),
        p_sw=st.floats(min_value=0.05, max_value=0.95, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_davg_within_machine_bounds(self, k, p_sw):
        from repro.workload import GeometricPattern

        for topo in (Torus2D(k), Mesh2D(k)):
            d = GeometricPattern(p_sw).d_avg(topo)
            assert 1.0 <= d <= topo.max_distance

    @given(k=st.integers(min_value=2, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_uniform_davg_equals_mean_remote_distance(self, k):
        from repro.workload import UniformPattern

        for topo in (Torus2D(k), Mesh2D(k)):
            d = topo.distance_matrix
            p = topo.num_nodes
            expected = d.sum() / (p * (p - 1))
            assert UniformPattern().d_avg(topo) == pytest.approx(expected)
