"""Property tests: batched kernels are equivalent to their scalar solvers.

The batched Bard-Schweitzer (:func:`repro.queueing.solve_batch`) must agree
with scalar :func:`repro.queueing.bard_schweitzer` pointwise to <= 1e-10 on
*any* same-shape batch -- single-point batches and zero-service (ideal)
stations included -- and the symmetric-manifold batch must be bitwise
identical to its scalar entry point regardless of batch composition.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import MMSModel, solve_points
from repro.params import paper_defaults
from repro.queueing import (
    ClosedNetwork,
    bard_schweitzer,
    solve_batch,
    solve_symmetric,
    solve_symmetric_batch,
)

finite = dict(allow_nan=False, allow_infinity=False)


@st.composite
def network_batches(draw):
    """A batch of 1..5 same-shape networks with varied numbers, including
    zero-service stations and empty classes."""
    c = draw(st.integers(min_value=1, max_value=3))
    m = draw(st.integers(min_value=2, max_value=5))
    b = draw(st.integers(min_value=1, max_value=5))
    nets = []
    for _ in range(b):
        visits = np.array(
            draw(
                st.lists(
                    st.lists(
                        st.one_of(
                            st.just(0.0),
                            st.floats(min_value=0.05, max_value=3.0, **finite),
                        ),
                        min_size=m,
                        max_size=m,
                    ),
                    min_size=c,
                    max_size=c,
                )
            )
        )
        # every class must visit something
        for i in range(c):
            if not np.any(visits[i] > 0):
                visits[i, 0] = 1.0
        service = np.array(
            draw(
                st.lists(
                    st.one_of(
                        st.just(0.0),
                        st.floats(min_value=0.1, max_value=20.0, **finite),
                    ),
                    min_size=m,
                    max_size=m,
                )
            )
        )
        pops = np.array(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=6), min_size=c, max_size=c
                )
            )
        )
        nets.append(
            ClosedNetwork(visits=visits, service=service, populations=pops)
        )
    return nets


class TestMultiClassEquivalence:
    @given(nets=network_batches())
    @settings(max_examples=60, deadline=None)
    def test_batch_matches_scalar_pointwise(self, nets):
        batch = solve_batch(nets)
        for net, got in zip(nets, batch):
            ref = bard_schweitzer(net)
            assert float(np.max(np.abs(got.queue_length - ref.queue_length), initial=0.0)) <= 1e-10
            assert float(np.max(np.abs(got.throughput - ref.throughput), initial=0.0)) <= 1e-10
            assert float(np.max(np.abs(got.waiting - ref.waiting), initial=0.0)) <= 1e-10
            assert got.converged == ref.converged

    @given(nets=network_batches())
    @settings(max_examples=30, deadline=None)
    def test_batch_results_independent_of_batch_composition(self, nets):
        """Solving a point alone equals solving it inside any batch."""
        whole = solve_batch(nets)
        for net, got in zip(nets, whole):
            (alone,) = solve_batch([net])
            assert float(np.max(np.abs(got.queue_length - alone.queue_length), initial=0.0)) <= 1e-10
            assert got.iterations == alone.iterations


@st.composite
def symmetric_batches(draw):
    m = draw(st.integers(min_value=2, max_value=6))
    b = draw(st.integers(min_value=1, max_value=6))
    types = np.array(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=2), min_size=m, max_size=m
            )
        )
    )
    visits = np.array(
        [
            [1.0]
            + draw(
                st.lists(
                    st.one_of(
                        st.just(0.0),
                        st.floats(min_value=0.05, max_value=2.0, **finite),
                    ),
                    min_size=m - 1,
                    max_size=m - 1,
                )
            )
            for _ in range(b)
        ]
    )
    service = np.array(
        draw(
            st.lists(
                st.lists(
                    st.one_of(
                        st.just(0.0),
                        st.floats(min_value=0.1, max_value=15.0, **finite),
                    ),
                    min_size=m,
                    max_size=m,
                ),
                min_size=b,
                max_size=b,
            )
        )
    )
    pops = np.array(
        draw(st.lists(st.integers(min_value=0, max_value=8), min_size=b, max_size=b))
    )
    return visits, service, types, pops


class TestSymmetricBitwise:
    @given(batch=symmetric_batches())
    @settings(max_examples=60, deadline=None)
    def test_batch_bitwise_equals_scalar(self, batch):
        visits, service, types, pops = batch
        sols = solve_symmetric_batch(visits, service, types, pops)
        for v, s, n, got in zip(visits, service, pops, sols):
            ref = solve_symmetric(v, s, types, int(n))
            assert got.throughput == ref.throughput
            assert np.array_equal(got.waiting, ref.waiting)
            assert np.array_equal(got.queue_length, ref.queue_length)
            assert np.array_equal(got.total_queue, ref.total_queue)
            assert got.iterations == ref.iterations
            assert got.residual == ref.residual


class TestModelLevelEquivalence:
    @given(
        overs=st.lists(
            st.fixed_dictionaries(
                {
                    "num_threads": st.integers(min_value=1, max_value=10),
                    "p_remote": st.floats(min_value=0.0, max_value=0.8, **finite),
                    "runlength": st.floats(min_value=2.0, max_value=30.0, **finite),
                    "pattern": st.sampled_from(["geometric", "uniform"]),
                }
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_solve_points_bitwise_equals_scalar_solve(self, overs):
        points = [paper_defaults(k=2, **o) for o in overs]
        perfs, _telemetry = solve_points(points)
        for params, got in zip(points, perfs):
            ref = MMSModel(params).solve()
            assert got.summary() == ref.summary()
            assert got.iterations == ref.iterations
            assert got.residual == ref.residual
