"""Convolution (Buzen) solver vs exact MVA -- two independent exact paths."""

import numpy as np
import pytest

from repro.queueing import (
    ClosedNetwork,
    StationKind,
    convolution_solve,
    exact_mva_single_class,
    normalization_constants,
)


def cyclic(demands, n, kinds=None):
    m = len(demands)
    return ClosedNetwork(
        visits=np.ones((1, m)),
        service=np.array(demands, dtype=float),
        populations=np.array([n]),
        kinds=kinds or (),
    )


class TestNormalizationConstants:
    def test_single_station(self):
        """One queueing station of demand d: G(n) = d^n."""
        g = normalization_constants(np.array([2.0]), 4)
        assert np.allclose(g, [1, 2, 4, 8, 16])

    def test_two_stations_by_hand(self):
        """D = [1, 2]: G(n) = sum_{k=0..n} 1^k 2^(n-k) = 2^(n+1) - 1."""
        g = normalization_constants(np.array([1.0, 2.0]), 3)
        assert np.allclose(g, [1, 3, 7, 15])

    def test_station_order_invariant(self):
        a = normalization_constants(np.array([1.0, 2.0, 0.5]), 5)
        b = normalization_constants(np.array([0.5, 1.0, 2.0]), 5)
        assert np.allclose(a, b)

    def test_delay_station_factor(self):
        """Pure delay of demand d: G(n) = d^n / n!."""
        g = normalization_constants(
            np.array([3.0]), 3, (StationKind.DELAY,)
        )
        assert np.allclose(g, [1, 3, 4.5, 4.5])

    def test_negative_population(self):
        with pytest.raises(ValueError):
            normalization_constants(np.array([1.0]), -1)


class TestConvolutionVsMVA:
    @pytest.mark.parametrize(
        "demands,n",
        [
            ([1.0, 2.0], 5),
            ([1.0, 1.0, 1.0], 8),
            ([0.5, 4.0, 2.0, 1.0], 6),
            ([3.0], 4),
        ],
    )
    def test_throughput_agrees(self, demands, n):
        net = cyclic(demands, n)
        conv = convolution_solve(net)
        mva = exact_mva_single_class(net)
        assert conv.throughput[0] == pytest.approx(mva.throughput[0], rel=1e-12)

    @pytest.mark.parametrize(
        "demands,n", [([1.0, 2.0], 5), ([0.5, 4.0, 2.0], 7)]
    )
    def test_queue_lengths_agree(self, demands, n):
        net = cyclic(demands, n)
        conv = convolution_solve(net)
        mva = exact_mva_single_class(net)
        assert np.allclose(conv.queue_length, mva.queue_length, rtol=1e-10)

    def test_waiting_agrees(self):
        net = cyclic([1.0, 2.0], 4)
        conv = convolution_solve(net)
        mva = exact_mva_single_class(net)
        assert np.allclose(conv.waiting, mva.waiting, rtol=1e-10)

    def test_with_delay_station(self):
        net = cyclic(
            [4.0, 2.0], 5, kinds=(StationKind.DELAY, StationKind.QUEUEING)
        )
        conv = convolution_solve(net)
        mva = exact_mva_single_class(net)
        assert conv.throughput[0] == pytest.approx(mva.throughput[0], rel=1e-12)
        assert np.allclose(conv.queue_length, mva.queue_length, rtol=1e-10)

    def test_population_conserved(self):
        sol = convolution_solve(cyclic([1.0, 2.0, 3.0], 9))
        assert sol.population_residual() < 1e-9

    def test_zero_population(self):
        sol = convolution_solve(cyclic([1.0], 0))
        assert sol.throughput[0] == 0.0

    def test_rejects_multiclass(self):
        net = ClosedNetwork(
            visits=np.ones((2, 2)),
            service=np.ones(2),
            populations=np.array([1, 1]),
        )
        with pytest.raises(ValueError, match="single-class"):
            convolution_solve(net)

    def test_rejects_multiserver(self):
        net = ClosedNetwork(
            visits=np.ones((1, 2)),
            service=np.ones(2),
            populations=np.array([2]),
            servers=(1, 2),
        )
        with pytest.raises(ValueError, match="single-server"):
            convolution_solve(net)
