"""Multi-server stations (Seidmann approximation) across the solvers."""

import numpy as np
import pytest

from repro.queueing import (
    ClosedNetwork,
    bard_schweitzer,
    exact_mva_single_class,
    solve_symmetric,
)


def net(demands, n, servers):
    m = len(demands)
    return ClosedNetwork(
        visits=np.ones((1, m)),
        service=np.array(demands, dtype=float),
        populations=np.array([n]),
        servers=tuple(servers),
    )


class TestNetworkSpec:
    def test_default_single_server(self):
        n = net([1.0, 2.0], 3, (1, 1))
        assert n.servers == (1, 1)

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            net([1.0], 1, (0,))
        with pytest.raises(ValueError):
            net([1.0, 2.0], 1, (1,))

    def test_seidmann_split(self):
        n = net([4.0, 6.0], 3, (1, 3))
        s_q, d = n.seidmann_split()
        assert np.allclose(s_q, [[4.0, 2.0]])
        assert np.allclose(d, [[0.0, 4.0]])

    def test_split_preserves_total_service(self):
        n = net([5.0], 2, (4,))
        s_q, d = n.seidmann_split()
        assert s_q[0, 0] + d[0, 0] == pytest.approx(5.0)


class TestSolverBehaviour:
    def test_single_customer_sees_full_service(self):
        """With N = 1 there is no queueing: W = s regardless of servers."""
        single = exact_mva_single_class(net([6.0, 2.0], 1, (3, 1)))
        assert single.waiting[0, 0] == pytest.approx(6.0)
        assert single.throughput[0] == pytest.approx(1 / 8.0)

    def test_more_servers_more_throughput(self):
        x1 = exact_mva_single_class(net([6.0, 2.0], 8, (1, 1))).throughput[0]
        x3 = exact_mva_single_class(net([6.0, 2.0], 8, (3, 1))).throughput[0]
        assert x3 > x1

    def test_saturation_rate_scales_with_servers(self):
        """Deep saturation: X -> m / s at the bottleneck."""
        x = exact_mva_single_class(net([6.0, 0.5], 60, (3, 1))).throughput[0]
        assert x == pytest.approx(3 / 6.0, rel=0.05)
        assert x <= 3 / 6.0  # the capacity bound is never exceeded

    def test_bs_matches_exact_shape(self):
        n = net([4.0, 2.0], 6, (2, 1))
        bs = bard_schweitzer(n).throughput[0]
        ex = exact_mva_single_class(n).throughput[0]
        assert bs == pytest.approx(ex, rel=0.06)

    def test_symmetric_solver_supports_servers(self):
        v = np.array([1.0, 1.0])
        s = np.array([4.0, 2.0])
        x1 = solve_symmetric(v, s, np.array([0, 1]), 6).throughput
        x2 = solve_symmetric(
            v, s, np.array([0, 1]), 6, servers=np.array([2, 1])
        ).throughput
        assert x2 > x1

    def test_symmetric_solver_validates_servers(self):
        v = np.ones(2)
        with pytest.raises(ValueError):
            solve_symmetric(v, v, np.array([0, 1]), 2, servers=np.array([1]))
        with pytest.raises(ValueError):
            solve_symmetric(v, v, np.array([0, 1]), 2, servers=np.array([0, 1]))

    def test_many_servers_bounded_by_delay_station(self):
        """m >= N: true behaviour is a pure delay; the Seidmann
        approximation is pessimistic but must stay between the
        single-server and the delay-station solutions."""
        n_pop = 4
        x_multi = exact_mva_single_class(
            net([5.0, 1.0], n_pop, (n_pop, 1))
        ).throughput[0]
        x_single = exact_mva_single_class(net([5.0, 1.0], n_pop, (1, 1))).throughput[
            0
        ]
        from repro.queueing import StationKind

        x_delay = exact_mva_single_class(
            ClosedNetwork(
                visits=np.ones((1, 2)),
                service=np.array([5.0, 1.0]),
                populations=np.array([n_pop]),
                kinds=(StationKind.DELAY, StationKind.QUEUEING),
            )
        ).throughput[0]
        assert x_single < x_multi < x_delay * 1.0001
