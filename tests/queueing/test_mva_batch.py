"""Batched AMVA kernel: lattice equivalence, masking, and non-convergence."""

import warnings

import numpy as np
import pytest

from repro.core.model import MMSModel
from repro.params import paper_defaults
from repro.queueing import (
    ClosedNetwork,
    ConvergenceError,
    ConvergenceWarning,
    bard_schweitzer,
    solve_batch,
    solve_symmetric,
    solve_symmetric_batch,
)

THREADS = (1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20)
P_REMOTES = tuple(round(0.05 * i, 2) for i in range(1, 17))


def _lattice_points():
    return [
        paper_defaults(num_threads=n, p_remote=p)
        for n in THREADS
        for p in P_REMOTES
    ]


def _symmetric_stacks(points):
    arrays = [MMSModel(p).station_arrays() for p in points]
    return (
        np.stack([a[0] for a in arrays]),
        np.stack([a[1] for a in arrays]),
        arrays[0][2],
        np.array([p.workload.num_threads for p in points]),
        np.stack([a[3] for a in arrays]),
        arrays,
    )


# -------------------------------------------------- Figure-4 lattice parity
class TestLatticeEquivalence:
    def test_symmetric_batch_bitwise_equals_scalar_on_figure4_lattice(self):
        """The full 176-point Figure-4 lattice: every point of the batched
        symmetric solve is bitwise-identical to its scalar solve (the
        property that lets sweep backends interchange freely)."""
        points = _lattice_points()
        visits, service, types, pops, servers, arrays = _symmetric_stacks(points)
        batch = solve_symmetric_batch(visits, service, types, pops, servers=servers)
        assert len(batch) == len(points)
        for (v, s, t, srv), n, got in zip(
            arrays, pops, batch
        ):
            ref = solve_symmetric(v, s, t, int(n), servers=srv)
            assert got.throughput == ref.throughput
            assert np.array_equal(got.waiting, ref.waiting)
            assert np.array_equal(got.queue_length, ref.queue_length)
            assert np.array_equal(got.total_queue, ref.total_queue)
            assert got.iterations == ref.iterations
            assert got.residual == ref.residual

    def test_multiclass_batch_matches_scalar_on_figure4_lattice(self):
        """solve_batch vs scalar bard_schweitzer on the same lattice's full
        multi-class networks: pointwise <= 1e-10 everywhere."""
        networks = [MMSModel(p).build_network() for p in _lattice_points()]
        batch = solve_batch(networks)
        worst = 0.0
        for net, got in zip(networks, batch):
            ref = bard_schweitzer(net)
            worst = max(
                worst,
                float(np.max(np.abs(got.queue_length - ref.queue_length))),
                float(np.max(np.abs(got.waiting - ref.waiting))),
                float(np.max(np.abs(got.throughput - ref.throughput))),
            )
        assert worst <= 1e-10, f"batch/scalar divergence {worst:.3e}"

    def test_single_point_batch_is_scalar(self):
        net = MMSModel(paper_defaults(k=2)).build_network()
        (got,) = solve_batch([net])
        ref = bard_schweitzer(net)
        assert float(np.max(np.abs(got.queue_length - ref.queue_length))) <= 1e-10
        assert got.iterations == ref.iterations


# ---------------------------------------------------------- masking/telemetry
class TestMaskingTelemetry:
    def test_trajectory_monotone_and_savings(self):
        points = _lattice_points()
        visits, service, types, pops, servers, _ = _symmetric_stacks(points)
        batch = solve_symmetric_batch(visits, service, types, pops, servers=servers)
        bt = batch[0].telemetry.batch
        assert bt.batch_size == len(points)
        assert bt.converged == len(points)
        traj = bt.active_trajectory
        assert traj[0] == len(points)
        assert all(a >= b for a, b in zip(traj, traj[1:])), "active set grew"
        assert bt.masked_iterations_saved > 0
        assert bt.iterations == len(traj)
        assert bt.max_residual <= 1e-12

    def test_per_point_iterations_match_scalar(self):
        """Masking must not change *when* each point converges."""
        points = _lattice_points()[:20]
        visits, service, types, pops, servers, arrays = _symmetric_stacks(points)
        batch = solve_symmetric_batch(visits, service, types, pops, servers=servers)
        for (v, s, t, srv), n, got in zip(arrays, pops, batch):
            ref = solve_symmetric(v, s, t, int(n), servers=srv)
            assert got.iterations == ref.iterations

    def test_zero_population_point_converges_immediately(self):
        visits = np.array([[1.0, 0.5], [1.0, 0.5]])
        service = np.array([[2.0, 1.0], [2.0, 1.0]])
        types = np.array([0, 1])
        sols = solve_symmetric_batch(visits, service, types, np.array([0, 3]))
        assert sols[0].converged and sols[0].iterations == 0
        assert sols[0].throughput == 0.0
        assert np.all(sols[0].queue_length == 0.0)
        assert sols[1].converged and sols[1].iterations > 0


# ------------------------------------------------------------- input checking
class TestValidation:
    def test_empty_batch(self):
        assert solve_batch([]) == []
        assert (
            solve_symmetric_batch(
                np.empty((0, 2)), np.empty((0, 2)), np.array([0, 1]), np.empty(0)
            )
            == []
        )

    def test_mixed_shapes_rejected(self):
        small = MMSModel(paper_defaults(k=2)).build_network()
        big = MMSModel(paper_defaults(k=3)).build_network()
        with pytest.raises(ValueError, match="share one"):
            solve_batch([small, big])

    def test_symmetric_shape_mismatches_rejected(self):
        v = np.ones((2, 3))
        types = np.array([0, 1, 1])
        with pytest.raises(ValueError, match="share a"):
            solve_symmetric_batch(v, np.ones((2, 4)), types, np.array([1, 1]))
        with pytest.raises(ValueError, match="station_type"):
            solve_symmetric_batch(v, np.ones((2, 3)), np.array([0, 1]), np.array([1, 1]))
        with pytest.raises(ValueError, match="populations"):
            solve_symmetric_batch(v, np.ones((2, 3)), types, np.array([1]))
        with pytest.raises(ValueError, match=">= 0"):
            solve_symmetric_batch(v, np.ones((2, 3)), types, np.array([1, -1]))
        with pytest.raises(ValueError, match="server"):
            solve_symmetric_batch(
                v, np.ones((2, 3)), types, np.array([1, 1]), servers=np.zeros((2, 3))
            )


# ------------------------------------------------------- non-convergence path
def _stiff_network() -> ClosedNetwork:
    return ClosedNetwork(
        visits=np.array([[1.0, 1.0], [1.0, 1.0]]),
        service=np.array([5.0, 7.0]),
        populations=np.array([4, 4]),
    )


class TestNonConvergence:
    def test_scalar_warns_and_flags(self):
        with pytest.warns(ConvergenceWarning, match="did not converge"):
            sol = bard_schweitzer(_stiff_network(), max_iter=2)
        assert not sol.converged
        assert sol.iterations == 2
        assert sol.residual > 0.0
        assert sol.telemetry is not None and not sol.telemetry.converged

    def test_scalar_strict_raises(self):
        with pytest.raises(ConvergenceError):
            bard_schweitzer(_stiff_network(), max_iter=2, strict=True)

    def test_batch_warns_and_flags_stragglers(self):
        nets = [_stiff_network(), _stiff_network()]
        with pytest.warns(ConvergenceWarning, match="2 point"):
            sols = solve_batch(nets, max_iter=2)
        for sol in sols:
            assert not sol.converged
            assert sol.iterations == 2
            assert sol.residual > 0.0
        bt = sols[0].telemetry.batch
        assert bt.converged == 0 and bt.batch_size == 2

    def test_batch_strict_raises(self):
        with pytest.raises(ConvergenceError):
            solve_batch([_stiff_network()], max_iter=2, strict=True)

    def test_symmetric_batch_warns_and_strict_raises(self):
        v = np.array([[1.0, 1.0]])
        s = np.array([[5.0, 7.0]])
        types = np.array([0, 1])
        pops = np.array([6])
        with pytest.warns(ConvergenceWarning):
            sols = solve_symmetric_batch(v, s, types, pops, max_iter=2)
        assert not sols[0].converged and sols[0].iterations == 2
        with pytest.raises(ConvergenceError):
            solve_symmetric_batch(v, s, types, pops, max_iter=2, strict=True)

    def test_converged_solve_emits_no_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", ConvergenceWarning)
            sol = bard_schweitzer(_stiff_network())
        assert sol.converged
