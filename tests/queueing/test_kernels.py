"""Unit tests for the solver-kernel layer: parity, selection, trajectory.

The compiled module's loops fall back to plain Python when numba is not
importable (the ``njit`` shim is an identity decorator), so the
compiled-vs-reference bitwise parity tests run *everywhere* -- they pin the
algorithmic agreement of the two implementations independent of whether
the jit actually fires.  Selection-precedence tests exercise the registry
(env < configure < explicit) without needing numba either.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.model import MMSModel
from repro.params import paper_defaults
from repro.queueing.kernels import (
    KERNELS,
    KernelUnavailableError,
    MulticlassSoA,
    SymmetricSoA,
    available_kernels,
    compiled,
    default_kernel,
    kernel_impl,
    reference,
    resolve_kernel,
    set_default_kernel,
    trajectory_from_iterations,
    validate_kernel_name,
)

TOL = 1e-12
MAX_ITER = 100_000


def _lattice_soa() -> SymmetricSoA:
    """A realistic symmetric stack: nine paper points of one machine size."""
    models = [
        MMSModel(paper_defaults(num_threads=n, p_remote=p))
        for n in (1, 4, 16)
        for p in (0.05, 0.4, 0.8)
    ]
    arrays = [m.station_arrays() for m in models]
    return SymmetricSoA.pack(
        visits=np.stack([a[0] for a in arrays]),
        service=np.stack([a[1] for a in arrays]),
        station_type=arrays[0][2],
        populations=np.array([m.params.workload.num_threads for m in models]),
        servers=np.stack([a[3] for a in arrays]),
    )


def _multiclass_soa() -> MulticlassSoA:
    networks = [
        MMSModel(paper_defaults(k=2, num_threads=n, p_remote=p)).build_network()
        for n in (2, 8)
        for p in (0.1, 0.6)
    ]
    return MulticlassSoA.from_networks(networks)


def _assert_bitwise(a, b) -> None:
    for name in ("q", "w", "x", "iterations", "residual", "converged"):
        np.testing.assert_array_equal(
            getattr(a, name), getattr(b, name), err_msg=name
        )
    assert a.trajectory == b.trajectory


class TestCompiledReferenceParity:
    """The compiled loops must agree with the reference *bitwise*."""

    def test_symmetric_bitwise(self):
        soa = _lattice_soa()
        _assert_bitwise(
            reference.symmetric_fixed_point(soa, TOL, MAX_ITER),
            compiled.symmetric_fixed_point(soa, TOL, MAX_ITER),
        )

    def test_multiclass_bitwise(self):
        soa = _multiclass_soa()
        _assert_bitwise(
            reference.multiclass_fixed_point(soa, TOL, MAX_ITER),
            compiled.multiclass_fixed_point(soa, TOL, MAX_ITER),
        )

    def test_symmetric_with_empty_point(self):
        # a zero-population point is pre-converged in both kernels
        soa = SymmetricSoA.pack(
            visits=np.ones((3, 4)),
            service=np.full((3, 4), 0.25),
            station_type=np.array([0, 1, 1, 2]),
            populations=np.array([0, 3, 7]),
        )
        ref = reference.symmetric_fixed_point(soa, TOL, MAX_ITER)
        com = compiled.symmetric_fixed_point(soa, TOL, MAX_ITER)
        _assert_bitwise(ref, com)
        assert bool(ref.converged[0]) and int(ref.iterations[0]) == 0

    def test_iteration_cap_flags_nonconverged_identically(self):
        soa = _lattice_soa()
        ref = reference.symmetric_fixed_point(soa, TOL, 3)
        com = compiled.symmetric_fixed_point(soa, TOL, 3)
        _assert_bitwise(ref, com)
        assert not ref.converged.all()


class TestTrajectory:
    def test_empty(self):
        assert trajectory_from_iterations(np.array([], dtype=np.int64)) == ()

    def test_all_preconverged(self):
        assert trajectory_from_iterations(np.zeros(4, dtype=np.int64)) == ()

    def test_mixed_counts(self):
        # finished at iterations 0, 1, 3, 3: active sizes are 3, 2, 2
        iters = np.array([0, 1, 3, 3], dtype=np.int64)
        assert trajectory_from_iterations(iters) == (3, 2, 2)

    def test_matches_reference_in_loop_recording(self):
        soa = _lattice_soa()
        res = reference.symmetric_fixed_point(soa, TOL, MAX_ITER)
        assert res.trajectory == trajectory_from_iterations(res.iterations)


class TestSelection:
    def test_registry_names(self):
        assert KERNELS == ("auto", "numpy", "numba")
        assert "numpy" in available_kernels()

    def test_validate_unknown_name(self):
        with pytest.raises(ValueError, match=r"unknown kernel 'fortran'"):
            validate_kernel_name("fortran")
        with pytest.raises(ValueError, match=r"pick from auto/numpy/numba"):
            validate_kernel_name("fortran")

    def test_kernel_impl_mapping(self):
        assert kernel_impl("numpy") is reference
        assert kernel_impl("numba") is compiled
        with pytest.raises(ValueError, match="no kernel implementation"):
            kernel_impl("auto")

    def test_auto_resolves_to_something_available(self):
        assert resolve_kernel("auto") in available_kernels()
        assert resolve_kernel(None) in available_kernels()

    @pytest.mark.skipif(
        "numba" in available_kernels(), reason="numba is available here"
    )
    def test_explicit_numba_unavailable_raises(self):
        with pytest.raises(KernelUnavailableError, match="install numba"):
            resolve_kernel("numba")
        # KernelUnavailableError is a ValueError: one except clause catches
        # both bad names and unavailable kernels at validation sites
        assert issubclass(KernelUnavailableError, ValueError)

    def test_env_below_configure_below_explicit(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVE_KERNEL", "numpy")
        assert default_kernel() == "numpy"
        prev = set_default_kernel("auto")
        try:
            assert default_kernel() == "auto"  # configure beats env
            assert resolve_kernel("numpy") == "numpy"  # explicit beats both
        finally:
            set_default_kernel(prev)
        assert default_kernel() == "numpy"  # env applies again

    def test_set_default_returns_previous_and_validates(self):
        prev = set_default_kernel("numpy")
        try:
            with pytest.raises(ValueError, match="unknown kernel"):
                set_default_kernel("bogus")
            assert default_kernel() == "numpy"  # failed set left it alone
        finally:
            set_default_kernel(prev)

    def test_configure_facade_roundtrip(self):
        prev = repro.configure(kernel="numpy")
        try:
            assert default_kernel() == "numpy"
        finally:
            repro.configure(**prev)
