"""Unit tests for the closed-network specification."""

import numpy as np
import pytest

from repro.queueing import ClosedNetwork, StationKind


def make_net(**kw):
    defaults = dict(
        visits=np.array([[1.0, 0.5]]),
        service=np.array([2.0, 4.0]),
        populations=np.array([3]),
    )
    defaults.update(kw)
    return ClosedNetwork(**defaults)


class TestConstruction:
    def test_basic_shapes(self):
        net = make_net()
        assert net.num_classes == 1
        assert net.num_stations == 2

    def test_service_broadcast(self):
        net = ClosedNetwork(
            visits=np.ones((2, 3)),
            service=np.array([1.0, 2.0, 3.0]),
            populations=np.array([1, 1]),
        )
        assert net.service.shape == (2, 3)
        assert np.allclose(net.service[0], net.service[1])

    def test_per_class_service(self):
        s = np.array([[1.0, 2.0], [3.0, 4.0]])
        net = ClosedNetwork(
            visits=np.ones((2, 2)), service=s, populations=np.array([1, 1])
        )
        assert np.array_equal(net.service, s)

    def test_demands(self):
        net = make_net()
        assert np.allclose(net.demands, [[2.0, 2.0]])

    def test_default_kinds_queueing(self):
        net = make_net()
        assert all(k is StationKind.QUEUEING for k in net.kinds)
        assert net.queueing_mask().all()

    def test_delay_station(self):
        net = make_net(kinds=(StationKind.QUEUEING, StationKind.DELAY))
        assert net.queueing_mask().tolist() == [True, False]

    def test_names_default(self):
        assert make_net().names == ("station0", "station1")

    def test_station_index(self):
        net = make_net(names=("cpu", "disk"))
        assert net.station_index("disk") == 1
        with pytest.raises(KeyError):
            net.station_index("net")


class TestValidation:
    def test_bad_service_shape(self):
        with pytest.raises(ValueError, match="service shape"):
            make_net(service=np.array([1.0, 2.0, 3.0]))

    def test_bad_population_shape(self):
        with pytest.raises(ValueError, match="populations shape"):
            make_net(populations=np.array([1, 2]))

    def test_negative_visits(self):
        with pytest.raises(ValueError, match="non-negative"):
            make_net(visits=np.array([[1.0, -0.5]]))

    def test_negative_service(self):
        with pytest.raises(ValueError):
            make_net(service=np.array([1.0, -2.0]))

    def test_negative_population(self):
        with pytest.raises(ValueError):
            make_net(populations=np.array([-1]))

    def test_wrong_kind_count(self):
        with pytest.raises(ValueError, match="kinds"):
            make_net(kinds=(StationKind.QUEUEING,))

    def test_wrong_name_count(self):
        with pytest.raises(ValueError, match="names"):
            make_net(names=("only-one",))

    def test_zero_service_allowed(self):
        """Zero-delay (ideal) stations are legal."""
        net = make_net(service=np.array([2.0, 0.0]))
        assert net.service[0, 1] == 0.0
