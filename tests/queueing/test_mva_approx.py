"""Unit tests for the Bard-Schweitzer AMVA and the Linearizer refinement."""

import numpy as np
import pytest

from repro.queueing import (
    ClosedNetwork,
    StationKind,
    bard_schweitzer,
    exact_mva,
    exact_mva_single_class,
    linearizer,
)


def cyclic(demands, n):
    m = len(demands)
    return ClosedNetwork(
        visits=np.ones((1, m)),
        service=np.array(demands, dtype=float),
        populations=np.array([n]),
    )


class TestBardSchweitzer:
    def test_exact_at_n1(self):
        """With one customer there is no queueing: BS is exact."""
        net = cyclic([1.0, 3.0], 1)
        bs = bard_schweitzer(net)
        ex = exact_mva_single_class(net)
        assert bs.throughput[0] == pytest.approx(ex.throughput[0], rel=1e-9)

    def test_converges(self):
        sol = bard_schweitzer(cyclic([1.0, 2.0, 3.0], 10))
        assert sol.converged
        assert sol.iterations > 0

    def test_close_to_exact_single_class(self):
        """BS error is small (classically a few % worst case)."""
        for demands, n in [([1.0, 2.0], 5), ([1.0, 1.0, 4.0], 8), ([2.0] * 5, 3)]:
            net = cyclic(demands, n)
            bs = bard_schweitzer(net).throughput[0]
            ex = exact_mva_single_class(net).throughput[0]
            assert bs == pytest.approx(ex, rel=0.05)

    def test_close_to_exact_multiclass(self):
        net = ClosedNetwork(
            visits=np.array([[1.0, 0.5, 0.2], [0.3, 1.0, 0.7]]),
            service=np.array([1.0, 2.0, 1.5]),
            populations=np.array([4, 3]),
        )
        bs = bard_schweitzer(net)
        ex = exact_mva(net)
        assert np.allclose(bs.throughput, ex.throughput, rtol=0.08)

    def test_population_conserved(self):
        sol = bard_schweitzer(cyclic([1.0, 5.0], 12))
        assert sol.population_residual() < 1e-6

    def test_littles_law_at_fixed_point(self):
        sol = bard_schweitzer(cyclic([1.0, 2.0], 6))
        assert sol.littles_law_residual() < 1e-8

    def test_utilization_below_one(self):
        sol = bard_schweitzer(cyclic([1.0, 4.0], 30))
        assert (sol.total_utilization <= 1.0 + 1e-9).all()

    def test_throughput_monotone_in_population(self):
        xs = [
            bard_schweitzer(cyclic([1.0, 2.0], n)).throughput[0]
            for n in (1, 2, 4, 8, 16)
        ]
        assert all(a < b + 1e-12 for a, b in zip(xs, xs[1:]))

    def test_throughput_monotone_in_demand(self):
        """Adding service demand can only slow a closed network down."""
        x_fast = bard_schweitzer(cyclic([1.0, 1.0], 5)).throughput[0]
        x_slow = bard_schweitzer(cyclic([1.0, 2.0], 5)).throughput[0]
        assert x_slow < x_fast

    def test_zero_service_station(self):
        """Ideal (zero-delay) stations contribute no waiting."""
        with_zero = bard_schweitzer(cyclic([2.0, 0.0, 3.0], 5))
        without = bard_schweitzer(cyclic([2.0, 3.0], 5))
        assert with_zero.throughput[0] == pytest.approx(
            without.throughput[0], rel=1e-9
        )
        assert with_zero.waiting[0, 1] == 0.0

    def test_delay_station_waiting_is_service(self):
        net = ClosedNetwork(
            visits=np.ones((1, 2)),
            service=np.array([4.0, 2.0]),
            populations=np.array([6]),
            kinds=(StationKind.DELAY, StationKind.QUEUEING),
        )
        sol = bard_schweitzer(net)
        assert sol.waiting[0, 0] == pytest.approx(4.0)

    def test_zero_population_class(self):
        net = ClosedNetwork(
            visits=np.ones((2, 2)),
            service=np.array([1.0, 2.0]),
            populations=np.array([0, 3]),
        )
        sol = bard_schweitzer(net)
        assert sol.throughput[0] == 0.0
        assert sol.throughput[1] > 0.0

    def test_asymptotic_bottleneck(self):
        sol = bard_schweitzer(cyclic([1.0, 5.0], 100))
        assert sol.throughput[0] == pytest.approx(0.2, rel=1e-3)


class TestLinearizer:
    def test_at_least_as_good_as_bs(self):
        """Linearizer should land closer to exact than plain BS on an
        unbalanced multiclass instance."""
        net = ClosedNetwork(
            visits=np.array([[1.0, 0.5, 0.2], [0.3, 1.0, 0.7]]),
            service=np.array([1.0, 2.0, 1.5]),
            populations=np.array([4, 3]),
        )
        ex = exact_mva(net).throughput
        bs = bard_schweitzer(net).throughput
        lin = linearizer(net).throughput
        err_bs = np.abs(bs - ex).max()
        err_lin = np.abs(lin - ex).max()
        assert err_lin <= err_bs + 1e-12

    def test_single_class_accuracy(self):
        net = cyclic([1.0, 1.0, 4.0], 8)
        ex = exact_mva_single_class(net).throughput[0]
        lin = linearizer(net).throughput[0]
        assert lin == pytest.approx(ex, rel=0.01)

    def test_population_conserved(self):
        net = cyclic([1.0, 2.0], 6)
        sol = linearizer(net)
        assert sol.population_residual() < 1e-4
