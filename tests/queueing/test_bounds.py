"""Unit tests for asymptotic and balanced-job bounds."""

import numpy as np
import pytest

from repro.queueing import (
    asymptotic_bounds,
    balanced_job_bounds,
    exact_mva_single_class,
)
from repro.queueing.network import ClosedNetwork


def exact_x(demands, n):
    m = len(demands)
    net = ClosedNetwork(
        visits=np.ones((1, m)),
        service=np.array(demands, dtype=float),
        populations=np.array([n]),
    )
    return exact_mva_single_class(net).throughput[0]


class TestAsymptoticBounds:
    def test_total_and_max(self):
        b = asymptotic_bounds(np.ones(3), np.array([1.0, 2.0, 3.0]))
        assert b.total_demand == 6.0
        assert b.max_demand == 3.0
        assert b.saturation_population == pytest.approx(2.0)

    def test_upper_bound_holds(self):
        demands = [1.0, 2.0, 4.0]
        b = asymptotic_bounds(np.ones(3), np.array(demands))
        for n in (1, 2, 5, 10, 50):
            assert exact_x(demands, n) <= b.throughput_upper(n) + 1e-12

    def test_lower_bound_holds(self):
        demands = [1.0, 2.0, 4.0]
        b = asymptotic_bounds(np.ones(3), np.array(demands))
        for n in (1, 2, 5, 10, 50):
            assert exact_x(demands, n) >= b.throughput_lower(n) - 1e-12

    def test_upper_bound_tight_at_n1(self):
        demands = [2.0, 3.0]
        b = asymptotic_bounds(np.ones(2), np.array(demands))
        assert exact_x(demands, 1) == pytest.approx(b.throughput_upper(1))

    def test_zero_population(self):
        b = asymptotic_bounds(np.ones(2), np.ones(2))
        assert b.throughput_upper(0) == 0.0
        assert b.throughput_lower(0) == 0.0


class TestBalancedJobBounds:
    def test_bracket_exact(self):
        demands = [1.0, 2.0, 3.0]
        for n in (1, 3, 8, 20):
            lo, hi = balanced_job_bounds(np.ones(3), np.array(demands), n)
            x = exact_x(demands, n)
            assert lo - 1e-12 <= x <= hi + 1e-12

    def test_exact_for_balanced(self):
        """For a balanced network the BJB upper bound is exact."""
        demands = [2.0, 2.0, 2.0]
        for n in (1, 4, 9):
            lo, hi = balanced_job_bounds(np.ones(3), np.array(demands), n)
            x = exact_x(demands, n)
            assert x == pytest.approx(hi, rel=1e-12)
            assert x == pytest.approx(lo, rel=1e-12)

    def test_zero_population(self):
        assert balanced_job_bounds(np.ones(2), np.ones(2), 0) == (0.0, 0.0)

    def test_ignores_zero_demand_stations(self):
        lo1, hi1 = balanced_job_bounds(
            np.array([1.0, 1.0, 0.0]), np.array([1.0, 2.0, 5.0]), 4
        )
        lo2, hi2 = balanced_job_bounds(np.ones(2), np.array([1.0, 2.0]), 4)
        assert (lo1, hi1) == pytest.approx((lo2, hi2))
