"""Tests for the QNSolution / SymmetricSolution result containers."""

import numpy as np
import pytest

from repro.queueing import (
    ClosedNetwork,
    exact_mva_single_class,
    solve_symmetric,
)


@pytest.fixture
def solved():
    net = ClosedNetwork(
        visits=np.array([[1.0, 2.0]]),
        service=np.array([3.0, 1.0]),
        populations=np.array([4]),
        names=("cpu", "disk"),
    )
    return exact_mva_single_class(net)


class TestQNSolution:
    def test_cycle_time_littles_law(self, solved):
        assert solved.cycle_time[0] == pytest.approx(4.0 / solved.throughput[0])

    def test_cycle_time_zero_throughput(self):
        net = ClosedNetwork(
            visits=np.ones((1, 1)),
            service=np.ones(1),
            populations=np.array([0]),
        )
        sol = exact_mva_single_class(net)
        assert sol.cycle_time[0] == np.inf

    def test_residence_decomposes_cycle(self, solved):
        res = solved.residence(0)
        assert res.sum() == pytest.approx(solved.cycle_time[0])

    def test_utilization_formula(self, solved):
        expected = solved.throughput[0] * np.array([1.0 * 3.0, 2.0 * 1.0])
        assert np.allclose(solved.utilization[0], expected)

    def test_total_views(self, solved):
        assert np.allclose(solved.total_utilization, solved.utilization[0])
        assert np.allclose(solved.total_queue_length, solved.queue_length[0])

    def test_bottleneck_identifiable(self, solved):
        """The highest-demand station carries the highest utilization."""
        assert solved.total_utilization.argmax() == 0  # cpu demand 3 > disk 2


class TestSymmetricSolution:
    def test_residence_helper(self):
        v = np.array([1.0, 0.5, 0.0])
        sol = solve_symmetric(v, np.array([2.0, 2.0, 2.0]), np.arange(3), 3)
        res = sol.residence(v)
        assert res[2] == 0.0
        assert res.sum() == pytest.approx(3.0 / sol.throughput)

    def test_total_queue_pooled_by_type(self):
        # two stations of the same type share one pooled total
        v = np.array([1.0, 1.0])
        sol = solve_symmetric(v, np.array([1.0, 1.0]), np.array([0, 0]), 2)
        assert sol.total_queue[0] == sol.total_queue[1]
        assert sol.total_queue[0] == pytest.approx(sol.queue_length.sum())
