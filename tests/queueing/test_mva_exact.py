"""Unit tests for exact MVA against textbook closed-form results."""

import numpy as np
import pytest

from repro.queueing import (
    ClosedNetwork,
    StationKind,
    exact_mva,
    exact_mva_single_class,
    lattice_size,
)


def cyclic(demands, n, kinds=None):
    """Single-class cyclic network with unit visits and given service times."""
    m = len(demands)
    return ClosedNetwork(
        visits=np.ones((1, m)),
        service=np.array(demands, dtype=float),
        populations=np.array([n]),
        kinds=kinds or (),
    )


class TestSingleClass:
    def test_single_station(self):
        """One queue, N customers: X = 1/s, Q = N."""
        sol = exact_mva_single_class(cyclic([2.0], 5))
        assert sol.throughput[0] == pytest.approx(0.5)
        assert sol.queue_length[0, 0] == pytest.approx(5.0)

    def test_balanced_two_station(self):
        """Balanced M=2: X(N) = N / (D (N + 1))."""
        for n in (1, 2, 5, 10):
            sol = exact_mva_single_class(cyclic([3.0, 3.0], n))
            assert sol.throughput[0] == pytest.approx(n / (3.0 * (n + 1)))

    def test_balanced_m_station(self):
        """Balanced M stations: X(N) = N / (D (N + M - 1))."""
        m, d, n = 4, 2.0, 6
        sol = exact_mva_single_class(cyclic([d] * m, n))
        assert sol.throughput[0] == pytest.approx(n / (d * (n + m - 1)))

    def test_bottleneck_saturation(self):
        """X(N) -> 1/D_max for large N."""
        sol = exact_mva_single_class(cyclic([1.0, 5.0], 50))
        assert sol.throughput[0] == pytest.approx(1 / 5.0, rel=1e-3)

    def test_utilization_below_one(self):
        sol = exact_mva_single_class(cyclic([1.0, 2.0, 3.0], 10))
        assert (sol.total_utilization <= 1.0 + 1e-12).all()

    def test_population_conserved(self):
        sol = exact_mva_single_class(cyclic([1.0, 2.0, 3.0], 7))
        assert sol.population_residual() < 1e-9

    def test_littles_law(self):
        sol = exact_mva_single_class(cyclic([1.5, 2.5], 4))
        assert sol.littles_law_residual() < 1e-12

    def test_delay_station(self):
        """Machine-repairman: delay Z + queue D; X(1) = 1/(Z + D)."""
        net = cyclic([4.0, 2.0], 1, kinds=(StationKind.DELAY, StationKind.QUEUEING))
        sol = exact_mva_single_class(net)
        assert sol.throughput[0] == pytest.approx(1 / 6.0)

    def test_delay_station_no_queueing(self):
        """Pure delay network: X = N/Z exactly, any N."""
        net = ClosedNetwork(
            visits=np.array([[1.0]]),
            service=np.array([5.0]),
            populations=np.array([8]),
            kinds=(StationKind.DELAY,),
        )
        sol = exact_mva_single_class(net)
        assert sol.throughput[0] == pytest.approx(8 / 5.0)

    def test_zero_population(self):
        sol = exact_mva_single_class(cyclic([1.0, 2.0], 0))
        assert sol.throughput[0] == 0.0

    def test_zero_service_station_ignored(self):
        """A zero-delay station adds nothing: same X as without it."""
        with_zero = exact_mva_single_class(cyclic([2.0, 0.0, 3.0], 5))
        without = exact_mva_single_class(cyclic([2.0, 3.0], 5))
        assert with_zero.throughput[0] == pytest.approx(without.throughput[0])

    def test_visit_scaling_invariance(self):
        """Only demands v*s matter for throughput."""
        a = ClosedNetwork(
            visits=np.array([[2.0, 1.0]]),
            service=np.array([1.0, 3.0]),
            populations=np.array([4]),
        )
        b = ClosedNetwork(
            visits=np.array([[1.0, 1.0]]),
            service=np.array([2.0, 3.0]),
            populations=np.array([4]),
        )
        xa = exact_mva_single_class(a).throughput[0]
        xb = exact_mva_single_class(b).throughput[0]
        assert xa == pytest.approx(xb)

    def test_rejects_multiclass(self):
        net = ClosedNetwork(
            visits=np.ones((2, 2)),
            service=np.ones(2),
            populations=np.array([1, 1]),
        )
        with pytest.raises(ValueError):
            exact_mva_single_class(net)


class TestMultiClass:
    def test_reduces_to_single_class(self):
        net = cyclic([1.0, 2.0], 5)
        assert exact_mva(net).throughput[0] == pytest.approx(
            exact_mva_single_class(net).throughput[0]
        )

    def test_two_symmetric_classes(self):
        """Two identical classes on shared stations behave like one class of
        double population on the shared-demand network."""
        net2 = ClosedNetwork(
            visits=np.ones((2, 2)),
            service=np.array([1.0, 1.0]),
            populations=np.array([2, 2]),
        )
        sol2 = exact_mva(net2)
        net1 = cyclic([1.0, 1.0], 4)
        sol1 = exact_mva(net1)
        assert 2 * sol2.throughput[0] == pytest.approx(sol1.throughput[0])
        assert sol2.throughput[0] == pytest.approx(sol2.throughput[1])

    def test_asymmetric_visits(self):
        """Classes with disjoint stations don't interact."""
        net = ClosedNetwork(
            visits=np.array([[1.0, 0.0], [0.0, 1.0]]),
            service=np.array([2.0, 4.0]),
            populations=np.array([3, 3]),
        )
        sol = exact_mva(net)
        assert sol.throughput[0] == pytest.approx(1 / 2.0)
        assert sol.throughput[1] == pytest.approx(1 / 4.0)

    def test_population_conserved(self):
        net = ClosedNetwork(
            visits=np.array([[1.0, 0.5], [0.5, 1.0]]),
            service=np.array([1.0, 2.0]),
            populations=np.array([2, 3]),
        )
        assert exact_mva(net).population_residual() < 1e-9

    def test_class_dependent_fcfs_rejected(self):
        net = ClosedNetwork(
            visits=np.ones((2, 1)),
            service=np.array([[1.0], [2.0]]),
            populations=np.array([1, 1]),
        )
        with pytest.raises(ValueError, match="class-dependent"):
            exact_mva(net)

    def test_lattice_guard(self):
        net = ClosedNetwork(
            visits=np.ones((4, 2)),
            service=np.ones(2),
            populations=np.array([100, 100, 100, 100]),
        )
        with pytest.raises(ValueError, match="lattice"):
            exact_mva(net)

    def test_lattice_size(self):
        assert lattice_size(np.array([2, 3])) == 12
