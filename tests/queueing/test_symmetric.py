"""Unit tests for the symmetric AMVA fast path.

The load-bearing property: on SPMD workloads over a vertex-transitive torus,
the symmetric solver must coincide with the full multi-class Bard-Schweitzer
solution (it is the same fixed point restricted to the symmetric manifold).
"""

import numpy as np
import pytest

from repro.core import MMSModel
from repro.params import paper_defaults
from repro.queueing import bard_schweitzer, exact_mva_single_class, solve_symmetric
from repro.queueing.network import ClosedNetwork


class TestBasics:
    def test_zero_population(self):
        sol = solve_symmetric(
            np.array([1.0, 0.5]), np.array([2.0, 1.0]), np.array([0, 1]), 0
        )
        assert sol.throughput == 0.0
        assert sol.converged

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            solve_symmetric(np.ones(3), np.ones(2), np.zeros(3), 1)

    def test_negative_population(self):
        with pytest.raises(ValueError):
            solve_symmetric(np.ones(2), np.ones(2), np.zeros(2), -1)

    def test_population_conserved(self):
        sol = solve_symmetric(
            np.array([1.0, 1.0]), np.array([1.0, 2.0]), np.array([0, 1]), 5
        )
        assert sol.queue_length.sum() == pytest.approx(5.0, abs=1e-8)

    def test_single_class_degenerate_case(self):
        """With each station its own type, the symmetric solver reduces to
        single-class Bard-Schweitzer; compare against exact at N=1."""
        v = np.array([1.0, 1.0])
        s = np.array([2.0, 3.0])
        sol = solve_symmetric(v, s, np.array([0, 1]), 1)
        net = ClosedNetwork(
            visits=v[None, :], service=s, populations=np.array([1])
        )
        ex = exact_mva_single_class(net)
        assert sol.throughput == pytest.approx(ex.throughput[0], rel=1e-9)

    def test_residence_helper(self):
        v = np.array([1.0, 2.0])
        sol = solve_symmetric(v, np.array([1.0, 1.0]), np.array([0, 1]), 3)
        assert np.allclose(sol.residence(v), v * sol.waiting)


class TestMatchesFullAMVA:
    """The headline equivalence, on real MMS instances."""

    @pytest.mark.parametrize(
        "overrides",
        [
            {},
            {"p_remote": 0.4},
            {"num_threads": 3},
            {"pattern": "uniform"},
            {"k": 2, "num_threads": 5},
            {"runlength": 20.0, "p_remote": 0.6},
            {"switch_delay": 0.0},
            {"memory_latency": 0.0, "p_remote": 0.3},
            {"memory_ports": 2, "p_remote": 0.3},
        ],
    )
    def test_equivalence(self, overrides):
        params = paper_defaults(**overrides)
        model = MMSModel(params)
        sym = model.solve(method="symmetric")
        full = model.solve(method="amva")
        assert sym.processor_utilization == pytest.approx(
            full.processor_utilization, rel=1e-6
        )
        assert sym.s_obs == pytest.approx(full.s_obs, rel=1e-5, abs=1e-9)
        assert sym.l_obs == pytest.approx(full.l_obs, rel=1e-6)
        assert sym.lambda_net == pytest.approx(full.lambda_net, rel=1e-6, abs=1e-12)

    def test_total_queue_uniform_within_type(self):
        """By symmetry, each station type's total queue is node-invariant --
        verify it against the full multi-class solution."""
        params = paper_defaults(num_threads=4)
        net = MMSModel(params).build_network()
        full = bard_schweitzer(net)
        p = params.arch.num_processors
        totals = full.total_queue_length
        for kind in range(4):
            sl = totals[kind * p : (kind + 1) * p]
            assert np.allclose(sl, sl[0], atol=1e-6)

    def test_speedup_structure(self):
        """The symmetric path touches O(M) state, the full path O(C*M)."""
        params = paper_defaults(k=6)
        model = MMSModel(params)
        v, s, t, srv = model.station_arrays()
        assert v.shape == (4 * 36,)
        assert model.build_network().visits.shape == (36, 4 * 36)
