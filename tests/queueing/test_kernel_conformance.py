"""Cross-backend x cross-kernel conformance: one lattice, one answer.

The repo's numeric contract says the *execution plan* must never leak into
the *data*: any sweep backend (in-process batch, process pool, shared-memory
group handoff, per-point serial) combined with any solver kernel (the numpy
reference or the numba-compiled one) must produce bitwise-identical records
for the same points.  This suite pins that contract on the real Figure-4
lattice (the 11 x 16 = 176-point ``(n_t, p_remote)`` grid of the paper) and
on the Table 2-4 golden payloads, replacing the scattered per-backend
equivalence tests that each checked one pair in isolation.

Kernel cells that need numba skip (not fail) where it is not importable, so
the matrix degrades to the reference column on a bare environment; CI runs
the suite both with and without numba installed.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.analysis import experiments
from repro.params import paper_defaults
from repro.queueing.kernels import available_kernels
from repro.runner import JobSpec, SweepRunner, canonical_json

GOLDEN_DIR = Path(__file__).parent.parent / "goldens"

#: the Figure-4 lattice: every (n_t, p_remote) point of the paper's surface
THREADS = experiments.DEFAULT_THREADS
P_REMOTES = experiments.DEFAULT_P_REMOTE

#: backend name -> runner factory for one conformance cell
RUNNERS = {
    "auto": lambda kernel: SweepRunner(kernel=kernel),
    "batch": lambda kernel: SweepRunner(backend="batch", kernel=kernel),
    "serial": lambda kernel: SweepRunner(backend="serial", kernel=kernel),
    "process": lambda kernel: SweepRunner(
        backend="process", jobs=2, kernel=kernel
    ),
    # same pool, but the whole lattice rides to one worker through the
    # zero-pickle shared-memory group handoff
    "process-shm": lambda kernel: SweepRunner(
        backend="process", jobs=2, kernel=kernel, min_shm_points=8
    ),
}


def _kernel_param(kernel: str):
    return pytest.param(
        kernel,
        marks=pytest.mark.skipif(
            kernel not in available_kernels(),
            reason=f"kernel {kernel!r} is not available in this environment",
        ),
    )


KERNEL_PARAMS = [_kernel_param("numpy"), _kernel_param("numba")]


def _lattice_specs() -> list[JobSpec]:
    return [
        JobSpec(paper_defaults(runlength=10.0, num_threads=n, p_remote=p))
        for n in THREADS
        for p in P_REMOTES
    ]


def _canonical_records(report) -> list[str]:
    assert report.ok, [r.error for r in report.results if not r.ok]
    return [canonical_json(r) for r in report.records()]


@pytest.fixture(scope="module")
def reference_records() -> list[str]:
    """The reference column: in-process batch backend, numpy kernel."""
    return _canonical_records(
        SweepRunner(backend="batch", kernel="numpy").run(_lattice_specs())
    )


class TestLatticeMatrix:
    @pytest.mark.parametrize("kernel", KERNEL_PARAMS)
    @pytest.mark.parametrize("backend", sorted(RUNNERS))
    def test_cell_bitwise_matches_reference(
        self, backend, kernel, reference_records
    ):
        report = RUNNERS[backend](kernel).run(_lattice_specs())
        assert _canonical_records(report) == reference_records

    def test_shm_cell_actually_used_the_shm_handoff(self):
        report = RUNNERS["process-shm"]("numpy").run(_lattice_specs())
        assert report.manifest.mode == "parallel"
        assert report.manifest.degradations == []
        handoffs = [b.get("handoff") for b in report.manifest.solver_batches]
        assert "shm" in handoffs

    def test_batch_cell_actually_batched(self):
        report = RUNNERS["batch"]("numpy").run(_lattice_specs())
        assert report.manifest.mode == "batch"
        assert report.manifest.solver_batches


def _jsonable(obj: object) -> object:
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return _jsonable(obj.tolist())
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        return obj.item()
    if isinstance(obj, float) and not math.isfinite(obj):
        return repr(obj)
    return obj


#: golden table name -> generator (the paper's Tables 2-4)
TABLES = {
    "table2": experiments.table2_network_tolerance,
    "table3": experiments.table3_partitioning_network,
    "table4": experiments.table4_partitioning_memory,
}


class TestTableGoldens:
    """Tables 2-4 must stay bitwise on the committed goldens per kernel.

    ``test_goldens.py`` pins the values at 1e-9 relative; here the bar is
    exact equality, because the kernels promise bitwise interchangeability
    -- a kernel that drifts within 1e-9 still breaks the cache contract.
    """

    @pytest.mark.parametrize("kernel", KERNEL_PARAMS)
    @pytest.mark.parametrize("table", sorted(TABLES))
    def test_table_bitwise_matches_golden(self, table, kernel):
        prev = repro.configure(kernel=kernel)
        try:
            data = _jsonable(TABLES[table]().data)
        finally:
            repro.configure(**prev)
        golden = json.loads((GOLDEN_DIR / f"{table}.json").read_text())
        assert data == golden
