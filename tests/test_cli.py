"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.k == 4 and args.nt == 8

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "table2"])
        assert args.name == "table2"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])


class TestCommands:
    def test_solve(self, capsys):
        assert main(["solve", "--k", "2", "--nt", "2"]) == 0
        out = capsys.readouterr().out
        assert "U_p" in out and "S_obs" in out

    def test_solve_with_method(self, capsys):
        assert main(["solve", "--k", "2", "--nt", "2", "--method", "amva"]) == 0
        assert "lambda_net" in capsys.readouterr().out

    def test_tolerance(self, capsys):
        assert main(["tolerance", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "tol_network" in out and "tol_memory" in out

    def test_bottleneck(self, capsys):
        assert main(["bottleneck"]) == 0
        out = capsys.readouterr().out
        assert "critical p_remote" in out
        assert "0.18" in out

    def test_experiment_claims(self, capsys):
        assert main(["experiment", "claims"]) == 0
        assert "Headline claims" in capsys.readouterr().out

    def test_uniform_pattern_flag(self, capsys):
        assert main(["bottleneck", "--pattern", "uniform"]) == 0
        out = capsys.readouterr().out
        # uniform d_avg = 32/15 on 4x4
        assert "2.1333" in out

    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "table2",
            "table3",
            "table4",
            "claims",
            "ext-ports",
            "ext-priority",
            "ext-buffers",
            "ext-pipeline",
            "ext-hotspot",
            "ext-context",
        }

    def test_hotspot_point_via_cli(self, capsys):
        assert (
            main(
                [
                    "solve",
                    "--k",
                    "2",
                    "--nt",
                    "2",
                    "--pattern",
                    "hotspot",
                    "--method",
                    "amva",
                ]
            )
            == 0
        )
        assert "U_p" in capsys.readouterr().out
