"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, _parse_axes, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.k == 4 and args.nt == 8

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "table2"])
        assert args.name == "table2"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])


class TestCommands:
    def test_solve(self, capsys):
        assert main(["solve", "--k", "2", "--nt", "2"]) == 0
        out = capsys.readouterr().out
        assert "U_p" in out and "S_obs" in out

    def test_solve_with_method(self, capsys):
        assert main(["solve", "--k", "2", "--nt", "2", "--method", "amva"]) == 0
        assert "lambda_net" in capsys.readouterr().out

    def test_tolerance(self, capsys):
        assert main(["tolerance", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "tol_network" in out and "tol_memory" in out

    def test_bottleneck(self, capsys):
        assert main(["bottleneck"]) == 0
        out = capsys.readouterr().out
        assert "critical p_remote" in out
        assert "0.18" in out

    def test_experiment_claims(self, capsys):
        assert main(["experiment", "claims"]) == 0
        assert "Headline claims" in capsys.readouterr().out

    def test_uniform_pattern_flag(self, capsys):
        assert main(["bottleneck", "--pattern", "uniform"]) == 0
        out = capsys.readouterr().out
        # uniform d_avg = 32/15 on 4x4
        assert "2.1333" in out

    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "table2",
            "table3",
            "table4",
            "claims",
            "ext-ports",
            "ext-priority",
            "ext-buffers",
            "ext-pipeline",
            "ext-hotspot",
            "ext-context",
        }

    def test_sweep_basic(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--k", "2",
                    "--axis", "num_threads=1,2",
                    "--axis", "p_remote=0.1,0.2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "U_p=" in out and "[sweep] 4 points (4 unique)" in out

    def test_sweep_measure_and_outputs(self, capsys, tmp_path):
        records = tmp_path / "records.jsonl"
        manifest = tmp_path / "manifest.json"
        assert (
            main(
                [
                    "sweep",
                    "--k", "2",
                    "--axis", "num_threads=1,2,4",
                    "--measure", "U_p",
                    "--out", str(records),
                    "--manifest", str(manifest),
                ]
            )
            == 0
        )
        lines = [json.loads(l) for l in records.read_text().splitlines()]
        assert len(lines) == 3
        assert lines[0]["axes"] == {"num_threads": 1}
        assert "U_p" in lines[0]["measures"]
        m = json.loads(manifest.read_text())
        assert m["unique_points"] == 3 and m["mode"] == "batch"
        assert m["solver_batches"] and m["solver_batches"][0]["batch_size"] == 3

    def test_sweep_warm_cache(self, capsys, tmp_path):
        argv = [
            "sweep",
            "--k", "2",
            "--axis", "num_threads=1,2",
            "--cache-dir", str(tmp_path / "cache"),
            "--manifest", str(tmp_path / "m.json"),
        ]
        assert main(argv) == 0
        assert main(argv) == 0
        warm = json.loads((tmp_path / "m.json").read_text())
        assert warm["cache_hit_rate"] == 1.0
        assert warm["cache_hits"] == 2 and warm["solved"] == 0

    def test_sweep_no_cache_flag(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert (
            main(["sweep", "--k", "2", "--axis", "num_threads=1", "--no-cache"])
            == 0
        )
        assert not (tmp_path / "envcache").exists()

    def test_sweep_linspace_axis(self, capsys):
        assert (
            main(["sweep", "--k", "2", "--axis", "p_remote=0.1:0.3:3"]) == 0
        )
        out = capsys.readouterr().out
        assert "p_remote=0.1 " in out and "p_remote=0.3 " in out

    def test_parse_axes(self):
        axes = _parse_axes(["num_threads=1,2,4", "p_remote=0.0:1.0:5"])
        assert axes["num_threads"] == [1, 2, 4]
        assert axes["p_remote"] == [0.0, 0.25, 0.5, 0.75, 1.0]
        assert _parse_axes(["wraparound=true,false"]) == {
            "wraparound": [True, False]
        }

    def test_parse_axes_rejects_garbage(self):
        with pytest.raises(SystemExit):
            _parse_axes(["num_threads"])
        with pytest.raises(SystemExit):
            _parse_axes(["num_threads="])
        with pytest.raises(SystemExit):
            _parse_axes(["p_remote=0:1"])

    def test_hotspot_point_via_cli(self, capsys):
        assert (
            main(
                [
                    "solve",
                    "--k",
                    "2",
                    "--nt",
                    "2",
                    "--pattern",
                    "hotspot",
                    "--method",
                    "amva",
                ]
            )
            == 0
        )
        assert "U_p" in capsys.readouterr().out


class TestSweepSelectionErrors:
    """Unknown --backend / --kernel values follow the CLI error contract:
    exit 2 with one clean stderr line that enumerates the valid choices
    (the flags deliberately drop argparse ``choices=`` so the message comes
    from the same validation the API raises)."""

    def test_unknown_backend_enumerates_choices(self, capsys):
        rc = main(["sweep", "--axis", "num_threads=1,2", "--backend", "bogus"])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.strip() == (
            "repro-mms: error: unknown backend 'bogus'; "
            "pick from auto/batch/process/serial"
        )
        assert err.count("\n") <= 1

    def test_unknown_kernel_enumerates_choices(self, capsys):
        rc = main(["sweep", "--axis", "num_threads=1,2", "--kernel", "bogus"])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.strip() == (
            "repro-mms: error: unknown kernel 'bogus'; "
            "pick from auto/numpy/numba"
        )
        assert err.count("\n") <= 1

    def test_unavailable_kernel_is_one_clean_line(self, capsys):
        from repro.queueing.kernels import available_kernels

        if "numba" in available_kernels():
            pytest.skip("numba is available here")
        rc = main(["sweep", "--axis", "num_threads=1,2", "--kernel", "numba"])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.startswith(
            "repro-mms: error: kernel 'numba' requested but numba is not"
        )
        assert "kernel='numpy'" in err

    def test_valid_kernel_accepted(self, capsys):
        assert (
            main(["sweep", "--axis", "num_threads=1,2", "--kernel", "numpy"])
            == 0
        )
        assert "num_threads=1 " in capsys.readouterr().out
