"""Docs/scenario drift pins: the written story must match the registry.

The scenario surface is documented in three places -- docs/SCENARIOS.md
(the per-family reference), the ``repro.configure`` table in docs/API.md,
and the README's scenario section.  These tests parse the registry back
out of the prose so registering, renaming, or re-fielding a scenario
fails loudly here instead of silently rotting the docs (the same pattern
``tests/test_kernel_docs.py`` applies to solver kernels).
"""

from __future__ import annotations

from pathlib import Path

from repro.scenarios import (
    _ENV_VAR,
    DEFAULT_SCENARIO,
    get_scenario,
    scenario_names,
)

ROOT = Path(__file__).resolve().parent.parent
SCENARIOS = ROOT / "docs" / "SCENARIOS.md"
API = ROOT / "docs" / "API.md"
README = ROOT / "README.md"


class TestScenariosDoc:
    def test_exists_and_names_every_scenario(self):
        text = SCENARIOS.read_text(encoding="utf-8")
        for name in scenario_names():
            assert f"`{name}`" in text, f"docs/SCENARIOS.md missing {name!r}"

    def test_every_parameter_field_documented(self):
        text = SCENARIOS.read_text(encoding="utf-8")
        for name in scenario_names():
            for field in get_scenario(name).field_names():
                assert f"`{field}`" in text, (
                    f"docs/SCENARIOS.md missing field {field!r} of "
                    f"scenario {name!r}"
                )

    def test_tolerance_subsystems_documented(self):
        text = SCENARIOS.read_text(encoding="utf-8")
        for name in scenario_names():
            for subsystem in get_scenario(name).tolerance_subsystems:
                assert f"`{subsystem}`" in text, (
                    f"docs/SCENARIOS.md missing subsystem {subsystem!r}"
                )

    def test_validation_sources_cited(self):
        text = SCENARIOS.read_text(encoding="utf-8")
        assert "1805.00857" in text  # Gast/Khatiri/Trystram (worksteal)
        assert "1110.3597" in text  # Kanrar & Siraj (hier)

    def test_env_var_and_precedence_documented(self):
        text = SCENARIOS.read_text(encoding="utf-8")
        assert "REPRO_SCENARIO" in text
        assert "ScenarioUnavailableError" in text


class TestApiTable:
    def test_scenario_row_present_with_env_var(self):
        text = API.read_text(encoding="utf-8")
        row = next(
            (
                line
                for line in text.splitlines()
                if line.startswith("| `scenario` |")
            ),
            None,
        )
        assert row is not None, "docs/API.md lost the `scenario` configure row"
        assert "`REPRO_SCENARIO`" in row
        for name in scenario_names():
            assert f"`{name}`" in row, f"scenario {name!r} missing from the row"
        assert "SCENARIOS.md" in row

    def test_env_var_matches_registry(self):
        # the module-private constant is the single source of the env name
        assert _ENV_VAR == "REPRO_SCENARIO"
        assert "REPRO_SCENARIO" in API.read_text(encoding="utf-8")

    def test_default_scenario_in_row(self):
        text = API.read_text(encoding="utf-8")
        row = next(
            line
            for line in text.splitlines()
            if line.startswith("| `scenario` |")
        )
        assert f"`{DEFAULT_SCENARIO}`" in row


class TestReadme:
    def test_scenario_selection_documented(self):
        text = README.read_text(encoding="utf-8")
        assert "`--scenario`" in text
        assert "REPRO_SCENARIO" in text
        for name in scenario_names():
            assert f"`{name}`" in text

    def test_scenarios_doc_referenced(self):
        assert "docs/SCENARIOS.md" in README.read_text(encoding="utf-8")
