"""Tests for the MMS-as-Petri-net builder and its validation role."""

import pytest

from repro.core import MMSModel
from repro.params import paper_defaults
from repro.simulation import simulate
from repro.spn import build_mms_net, simulate_spn


@pytest.fixture(scope="module")
def small_params():
    return paper_defaults(k=2, num_threads=3, p_remote=0.4)


class TestStructure:
    def test_place_population(self, small_params):
        net = build_mms_net(small_params)
        # initial tokens: n_t per ready place + 4 server tokens per node
        p = 4
        assert sum(net.initial_marking) == p * 3 + 4 * p

    def test_context_switch_rejected(self):
        with pytest.raises(ValueError, match="C == 0"):
            build_mms_net(paper_defaults(context_switch=1.0))

    def test_local_only_net_is_small(self):
        net = build_mms_net(paper_defaults(k=2, p_remote=0.0))
        # no goremote transitions
        names = [t.name for t in net.transitions]
        assert not any(n.startswith("goremote") for n in names)

    def test_remote_flows_per_pair(self, small_params):
        net = build_mms_net(small_params)
        names = [t.name for t in net.transitions]
        goremote = [n for n in names if n.startswith("goremote")]
        # 2x2 torus: each node has 3 remote destinations
        assert len(goremote) == 4 * 3


class TestValidation:
    def test_spn_matches_analytical_model(self, small_params):
        """The Petri-net simulation validates the MVA predictions (the
        paper's Section 8, here on a 2x2 machine for speed)."""
        perf = MMSModel(small_params).solve()
        rep = simulate_spn(small_params, duration=40_000.0, seed=8)
        assert rep.processor_utilization == pytest.approx(
            perf.processor_utilization, rel=0.05
        )
        assert rep.lambda_net == pytest.approx(perf.lambda_net, rel=0.06)
        assert rep.s_obs == pytest.approx(perf.s_obs, rel=0.12)
        assert rep.l_obs == pytest.approx(perf.l_obs, rel=0.12)

    def test_spn_matches_des(self, small_params):
        """The two simulators describe the same stochastic system."""
        spn = simulate_spn(small_params, duration=40_000.0, seed=9)
        des = simulate(small_params, duration=40_000.0, seed=10)
        assert spn.processor_utilization == pytest.approx(
            des.processor_utilization, rel=0.05
        )
        assert spn.lambda_net == pytest.approx(des.lambda_net, rel=0.06)
        assert spn.s_obs == pytest.approx(des.s_obs, rel=0.12)

    def test_summary_keys(self, small_params):
        rep = simulate_spn(small_params, duration=2000.0, seed=0)
        assert set(rep.summary()) == {
            "U_p",
            "lambda_net",
            "S_obs",
            "L_obs",
            "access_rate",
        }

    def test_local_only_spn(self):
        params = paper_defaults(k=2, num_threads=2, p_remote=0.0)
        rep = simulate_spn(params, duration=20_000.0, seed=1)
        perf = MMSModel(params).solve()
        assert rep.lambda_net == 0.0
        assert rep.s_obs == 0.0
        assert rep.processor_utilization == pytest.approx(
            perf.processor_utilization, rel=0.05
        )
