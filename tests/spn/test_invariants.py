"""Structural analysis of Petri nets: incidence matrices and P-invariants."""

import numpy as np
import pytest

from repro.params import paper_defaults
from repro.spn import (
    PetriNet,
    SPNSimulator,
    TransitionKind,
    build_mms_net,
    mms_invariants,
)


def simple_cycle():
    """a --t1--> b --t2--> a: tokens conserved on {a, b}."""
    net = PetriNet()
    a = net.add_place("a", 2)
    b = net.add_place("b")
    net.add_transition("t1", TransitionKind.EXPONENTIAL, [(a, 1)], [(b, 1)], 1.0)
    net.add_transition("t2", TransitionKind.EXPONENTIAL, [(b, 1)], [(a, 1)], 2.0)
    return net


class TestIncidenceMatrix:
    def test_shape_and_values(self):
        net = simple_cycle()
        c = net.incidence_matrix()
        assert c.shape == (2, 2)
        assert np.array_equal(c, [[-1, 1], [1, -1]])

    def test_multiplicities(self):
        net = PetriNet()
        a = net.add_place("a", 4)
        b = net.add_place("b")
        net.add_transition(
            "fork", TransitionKind.EXPONENTIAL, [(a, 2)], [(b, 3)], 1.0
        )
        c = net.incidence_matrix()
        assert c[a, 0] == -2
        assert c[b, 0] == 3


class TestPInvariants:
    def test_cycle_conservation(self):
        net = simple_cycle()
        assert net.is_p_invariant(np.array([1.0, 1.0]))
        assert not net.is_p_invariant(np.array([1.0, 2.0]))

    def test_invariant_value(self):
        net = simple_cycle()
        assert net.invariant_value(np.array([1.0, 1.0])) == 2.0

    def test_weight_shape_checked(self):
        with pytest.raises(ValueError):
            simple_cycle().is_p_invariant(np.ones(3))

    def test_invariant_preserved_by_simulation(self):
        """Dynamic check: the weighted count is constant along a run."""
        net = simple_cycle()
        sim = SPNSimulator(net, seed=1)
        sim.run(100.0)
        assert net.invariant_value(np.ones(2), sim.marking) == 2.0


class TestMMSInvariants:
    @pytest.fixture(scope="class")
    def setup(self):
        params = paper_defaults(k=2, num_threads=3, p_remote=0.4)
        net = build_mms_net(params)
        return params, net, mms_invariants(net, params)

    def test_all_structural(self, setup):
        _, net, invariants = setup
        for name, w in invariants.items():
            assert net.is_p_invariant(w), f"{name} is not invariant"

    def test_thread_counts(self, setup):
        params, net, invariants = setup
        for i in range(params.arch.num_processors):
            assert net.invariant_value(invariants[f"threads_{i}"]) == 3.0

    def test_server_tokens(self, setup):
        params, net, invariants = setup
        for i in range(params.arch.num_processors):
            assert net.invariant_value(invariants[f"proc_server_{i}"]) == 1.0
            assert net.invariant_value(invariants[f"mem_server_{i}"]) == 1.0

    def test_preserved_after_simulation(self, setup):
        params, net, invariants = setup
        sim = SPNSimulator(net, seed=7)
        sim.run(5_000.0)
        for name, w in invariants.items():
            expected = net.invariant_value(w)
            assert net.invariant_value(w, sim.marking) == expected, name

    def test_local_only_machine(self):
        params = paper_defaults(k=2, num_threads=2, p_remote=0.0)
        net = build_mms_net(params)
        invariants = mms_invariants(net, params)
        for name, w in invariants.items():
            assert net.is_p_invariant(w), name

    def test_nullspace_contains_invariants(self, setup):
        """Cross-check against a numerically computed left nullspace."""
        from scipy.linalg import null_space

        _, net, invariants = setup
        ns = null_space(net.incidence_matrix().T.astype(float))
        # every claimed invariant must lie in the span of the nullspace
        for name, w in invariants.items():
            proj = ns @ (ns.T @ w)
            assert np.allclose(proj, w, atol=1e-8), name
