"""Unit tests for the GSPN engine against known queueing results."""

import numpy as np
import pytest

from repro.spn import PetriNet, SPNSimulator, TransitionKind


def mm1_closed(n_tokens, think, service):
    """Closed single-server loop: think (delay-ish via exponential single
    server... kept single-server to match the engine) -> queue -> service."""
    net = PetriNet()
    thinking = net.add_place("thinking", n_tokens)
    queue = net.add_place("queue")
    server = net.add_place("server", 1)
    busy = net.add_place("busy")
    net.add_transition(
        "think",
        TransitionKind.EXPONENTIAL,
        inputs=[(thinking, 1)],
        outputs=[(queue, 1)],
        param=think,
    )
    net.add_transition(
        "start",
        TransitionKind.IMMEDIATE,
        inputs=[(queue, 1), (server, 1)],
        outputs=[(busy, 1)],
    )
    net.add_transition(
        "end",
        TransitionKind.EXPONENTIAL,
        inputs=[(busy, 1)],
        outputs=[(server, 1), (thinking, 1)],
        param=service,
    )
    return net


class TestConstruction:
    def test_duplicate_place_rejected(self):
        net = PetriNet()
        net.add_place("p")
        with pytest.raises(ValueError):
            net.add_place("p")

    def test_duplicate_transition_rejected(self):
        net = PetriNet()
        a = net.add_place("a", 1)
        net.add_transition("t", TransitionKind.EXPONENTIAL, [(a, 1)], [], 1.0)
        with pytest.raises(ValueError):
            net.add_transition("t", TransitionKind.EXPONENTIAL, [(a, 1)], [], 1.0)

    def test_bad_place_index(self):
        net = PetriNet()
        with pytest.raises(ValueError):
            net.add_transition("t", TransitionKind.EXPONENTIAL, [(3, 1)], [], 1.0)

    def test_bad_multiplicity(self):
        net = PetriNet()
        a = net.add_place("a")
        with pytest.raises(ValueError):
            net.add_transition("t", TransitionKind.EXPONENTIAL, [(a, 0)], [], 1.0)

    def test_negative_marking_rejected(self):
        net = PetriNet()
        with pytest.raises(ValueError):
            net.add_place("a", -1)

    def test_immediate_needs_weight(self):
        net = PetriNet()
        a = net.add_place("a")
        with pytest.raises(ValueError):
            net.add_transition("t", TransitionKind.IMMEDIATE, [(a, 1)], [], 0.0)

    def test_place_lookup(self):
        net = PetriNet()
        net.add_place("x")
        assert net.place("x") == 0
        with pytest.raises(KeyError):
            net.place("y")


class TestSemantics:
    def test_token_conservation_in_loop(self):
        net = mm1_closed(3, 5.0, 1.0)
        sim = SPNSimulator(net, seed=1)
        res = sim.run(2000.0)
        # tokens: 3 customers circulate; server token conserved
        total = res.mean("thinking") + res.mean("queue") + res.mean("busy")
        assert total == pytest.approx(3.0, abs=1e-9)
        assert res.mean("server") + res.mean("busy") == pytest.approx(1.0, abs=1e-9)

    def test_flow_balance(self):
        """All transitions on a cycle fire at the same rate."""
        net = mm1_closed(2, 4.0, 1.0)
        res = SPNSimulator(net, seed=2).run(5000.0)
        assert res.rate("think") == pytest.approx(res.rate("end"), rel=0.01)

    def test_against_exact_mva(self):
        """Closed 2-station exponential loop must match exact MVA."""
        from repro.queueing import ClosedNetwork, exact_mva_single_class

        think, service, n = 3.0, 2.0, 4
        net = mm1_closed(n, think, service)
        res = SPNSimulator(net, seed=3).run(60_000.0, warmup=2000.0)
        qn = ClosedNetwork(
            visits=np.ones((1, 2)),
            service=np.array([think, service]),
            populations=np.array([n]),
        )
        x = exact_mva_single_class(qn).throughput[0]
        assert res.rate("end") == pytest.approx(x, rel=0.03)

    def test_deterministic_transition(self):
        net = PetriNet()
        a = net.add_place("a", 1)
        b = net.add_place("b")
        net.add_transition(
            "move", TransitionKind.DETERMINISTIC, [(a, 1)], [(b, 1)], 7.0
        )
        sim = SPNSimulator(net, seed=0)
        res = sim.run(10.0)
        assert res.firing_counts[0] == 1
        assert sim.marking[b] == 1

    def test_immediate_priority_over_timed(self):
        """An immediate transition drains before any timed firing."""
        net = PetriNet()
        a = net.add_place("a", 1)
        b = net.add_place("b")
        c = net.add_place("c")
        net.add_transition("imm", TransitionKind.IMMEDIATE, [(a, 1)], [(b, 1)])
        net.add_transition(
            "timed", TransitionKind.EXPONENTIAL, [(a, 1)], [(c, 1)], 0.001
        )
        sim = SPNSimulator(net, seed=0)
        sim.run(1.0)
        assert sim.marking[b] == 1
        assert sim.marking[c] == 0

    def test_weighted_conflict_resolution(self):
        """Immediate conflicts follow their weights."""
        wins = {"x": 0, "y": 0}
        for seed in range(300):
            net = PetriNet()
            a = net.add_place("a", 1)
            x = net.add_place("x")
            y = net.add_place("y")
            net.add_transition(
                "tox", TransitionKind.IMMEDIATE, [(a, 1)], [(x, 1)], 0.8
            )
            net.add_transition(
                "toy", TransitionKind.IMMEDIATE, [(a, 1)], [(y, 1)], 0.2
            )
            sim = SPNSimulator(net, seed=seed)
            sim.run(0.001)
            if sim.marking[x]:
                wins["x"] += 1
            else:
                wins["y"] += 1
        assert wins["x"] / 300 == pytest.approx(0.8, abs=0.07)

    def test_warmup_resets_statistics(self):
        net = mm1_closed(1, 1.0, 1.0)
        res = SPNSimulator(net, seed=5).run(1000.0, warmup=100.0)
        assert res.duration == 1000.0
        # rates should reflect steady state, not include warmup period count
        assert res.rate("end") > 0

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            SPNSimulator(mm1_closed(1, 1.0, 1.0)).run(0.0)

    def test_prefix_aggregation(self):
        net = mm1_closed(2, 1.0, 1.0)
        res = SPNSimulator(net, seed=6).run(500.0)
        assert res.mean_sum("th") == pytest.approx(res.mean("thinking"))
        assert res.rate_sum("e") == pytest.approx(res.rate("end"))
