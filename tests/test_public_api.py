"""The api_redesign contract: surface, docstrings, shims, configure.

Pins the facade introduced in ISSUE 5: ``repro.__all__`` matches the
documented surface (and docs/API.md names every facade function), every
facade function's docstring describes each of its parameters, each
deprecated shim warns exactly once per process and forwards correctly,
and ``repro.configure`` composes/restores all three subsystems.
"""

import inspect
import warnings
from pathlib import Path

import pytest

import repro
from repro import _deprecation, api

DOCS_API = Path(__file__).resolve().parent.parent / "docs" / "API.md"

#: the documented stable surface, in export order
DOCUMENTED_SURFACE = [
    "__version__",
    "Architecture",
    "Workload",
    "MMSParams",
    "paper_defaults",
    "solve",
    "solve_points",
    "sweep",
    "simulate",
    "tolerance_index",
    "configure",
    "scenarios",
    "SolveService",
    "ServiceConfig",
    "MMSModel",
    "MMSPerformance",
    "ToleranceResult",
    "ToleranceZone",
    "classify",
    "network_tolerance",
    "memory_tolerance",
    "tolerance_report",
    "analyze",
    "lambda_net_saturation",
    "critical_p_remote",
    "zone_boundary",
    "threads_for_tolerance",
]

FACADE_FUNCTIONS = [
    "solve",
    "solve_points",
    "sweep",
    "simulate",
    "tolerance_index",
    "configure",
    "scenarios",
]


@pytest.fixture()
def fresh_warnings():
    """Reset the warn-once registry so each test observes first warnings."""
    saved = set(_deprecation._WARNED)
    _deprecation._WARNED.clear()
    yield
    _deprecation._WARNED.clear()
    _deprecation._WARNED.update(saved)


class TestSurface:
    def test_all_matches_documented_surface(self):
        assert list(repro.__all__) == DOCUMENTED_SURFACE

    def test_every_name_in_all_is_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_api_module_all_is_subset_of_package_all(self):
        for name in api.__all__:
            assert name in repro.__all__, name

    def test_docs_api_names_every_facade_function(self):
        text = DOCS_API.read_text(encoding="utf-8")
        for name in FACADE_FUNCTIONS:
            assert f"repro.{name}" in text, f"docs/API.md missing repro.{name}"
        assert "repro.SolveService" in text

    def test_facade_solve_matches_core_solve_bitwise(self):
        params = repro.paper_defaults(num_threads=8, p_remote=0.2)
        from repro.core.model import solve as core_solve

        assert repro.solve(params).to_dict() == core_solve(params).to_dict()
        assert (
            repro.solve(num_threads=8, p_remote=0.2).to_dict()
            == core_solve(params).to_dict()
        )


class TestDocstrings:
    @pytest.mark.parametrize("name", FACADE_FUNCTIONS)
    def test_facade_function_documents_every_parameter(self, name):
        func = getattr(api, name)
        doc = func.__doc__
        assert doc and len(doc.strip()) > 40, f"{name}: missing docstring"
        params = [
            p
            for p in inspect.signature(func).parameters
            if p not in ("self",)
        ]
        for param in params:
            # **overrides appears as "overrides"; _UNSET-defaulted kwargs by name
            label = param.lstrip("*")
            assert label in doc, f"{name}: parameter {param!r} undocumented"


class TestDeprecatedShims:
    def test_runner_configure_warns_once_and_forwards(self, fresh_warnings):
        from repro import runner
        from repro.runner.config import effective_config

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            prev = runner.configure(jobs=7)
            try:
                assert effective_config()["jobs"] == 7  # forwarded
                runner.configure(jobs=3)  # second call: no second warning
            finally:
                runner.configure(**prev)
        dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(dep) == 1
        assert "repro.runner.configure" in str(dep[0].message)
        assert "repro.configure" in str(dep[0].message)

    def test_obs_configure_warns_once_and_forwards(self, fresh_warnings):
        from repro import obs
        from repro.obs.trace import Tracer, get_tracer

        tracer = Tracer()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            prev = obs.configure(tracer=tracer)
            try:
                assert get_tracer() is tracer  # forwarded
                obs.configure(trace=False)
            finally:
                obs.configure(**prev)
        dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(dep) == 1
        assert "repro.obs.configure" in str(dep[0].message)

    def test_resilience_configure_warns_once_and_forwards(self, fresh_warnings):
        from repro import resilience
        from repro.resilience.faults import get_injector

        plan = {"seed": 1, "sites": {"solve.delay": {"on_nth": [99]}}}
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            prev = resilience.configure(fault_plan=plan)
            try:
                assert get_injector() is not None  # forwarded
                resilience.configure(fault_plan=None)
            finally:
                resilience.configure(**prev)
        dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(dep) == 1
        assert "repro.resilience.configure" in str(dep[0].message)

    def test_facade_configure_never_warns(self, fresh_warnings):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            prev = repro.configure(jobs=2, trace=False, fault_plan=None)
            repro.configure(
                **{k: v for k, v in prev.items() if k != "tracer"}
            )
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]


class TestConfigure:
    def test_composes_all_three_subsystems(self):
        from repro.obs.trace import get_tracer
        from repro.resilience.faults import get_injector
        from repro.runner.config import effective_config

        prev = repro.configure(
            jobs=5,
            backend="batch",
            fault_plan={"seed": 2, "sites": {"solve.delay": {"on_nth": [99]}}},
        )
        try:
            cfg = effective_config()
            assert cfg["jobs"] == 5
            assert cfg["backend"] == "batch"
            assert get_injector() is not None
        finally:
            repro.configure(**prev)
        assert get_injector() is None
        assert get_tracer() is None or True  # tracer untouched by restore

    def test_returns_only_touched_settings(self):
        prev = repro.configure(jobs=4)
        try:
            assert set(prev) == {"jobs"}
        finally:
            repro.configure(**prev)

    def test_restore_round_trip(self):
        from repro.runner.config import effective_config

        before = effective_config()
        prev = repro.configure(jobs=9, retries=4, timeout=1.5)
        repro.configure(**prev)
        assert effective_config() == before

    def test_unknown_keyword_rejected(self):
        with pytest.raises(TypeError):
            repro.configure(warp_speed=9)
