"""Unit tests for the iso-work thread-partitioning strategy."""

import pytest

from repro.params import Workload
from repro.workload import IsoWorkPartitioning, coalesce, partition_workloads


class TestIsoWorkPartitioning:
    def test_work_is_invariant(self):
        part = IsoWorkPartitioning(40.0)
        for nt in (1, 2, 4, 5, 8, 40):
            wl = part.workload(nt)
            assert wl.num_threads * wl.runlength == pytest.approx(40.0)

    def test_template_fields_preserved(self):
        tmpl = Workload(p_remote=0.4, pattern="uniform")
        wl = IsoWorkPartitioning(20.0, tmpl).workload(4)
        assert wl.p_remote == 0.4
        assert wl.pattern == "uniform"

    def test_sweep_order(self):
        part = IsoWorkPartitioning(80.0)
        wls = list(part.sweep([1, 2, 4]))
        assert [w.num_threads for w in wls] == [1, 2, 4]
        assert [w.runlength for w in wls] == [80.0, 40.0, 20.0]

    def test_runlengths(self):
        assert IsoWorkPartitioning(40.0).runlengths([2, 8]) == [20.0, 5.0]

    def test_invalid_work(self):
        with pytest.raises(ValueError):
            IsoWorkPartitioning(0.0)

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            IsoWorkPartitioning(10.0).workload(0)


class TestPartitionWorkloads:
    def test_shortcut(self):
        wls = partition_workloads(40.0, [4, 8])
        assert len(wls) == 2
        assert wls[0].runlength == 10.0
        assert wls[1].runlength == 5.0


class TestCoalesce:
    def test_halving(self):
        wl = Workload(num_threads=8, runlength=5.0)
        c = coalesce(wl, 2)
        assert c.num_threads == 4
        assert c.runlength == 10.0

    def test_preserves_work(self):
        wl = Workload(num_threads=7, runlength=10.0)
        c = coalesce(wl, 3)
        assert c.num_threads * c.runlength == pytest.approx(70.0)

    def test_rounds_up(self):
        wl = Workload(num_threads=7, runlength=10.0)
        assert coalesce(wl, 2).num_threads == 4

    def test_never_below_one_thread(self):
        wl = Workload(num_threads=4, runlength=10.0)
        assert coalesce(wl, 100).num_threads == 1

    def test_identity(self):
        wl = Workload(num_threads=4, runlength=10.0)
        assert coalesce(wl, 1) == wl

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            coalesce(Workload(), 0)
