"""Tests for the data-distribution -> access-pattern bridge."""

import numpy as np
import pytest

from repro.core import MMSModel
from repro.params import paper_defaults
from repro.topology import Torus2D
from repro.workload import (
    BlockCyclicDistribution,
    BlockDistribution,
    CyclicDistribution,
    DoAllLoop,
    EmpiricalPattern,
    Reference,
    derive_pattern,
)


class TestDistributions:
    def test_block_owners(self):
        d = BlockDistribution(8, 4)  # blocks of 2
        assert [d.owner(i) for i in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_block_uneven(self):
        d = BlockDistribution(10, 4)  # ceil(10/4) = 3
        assert d.owner(9) == 3
        assert d.owner(2) == 0

    def test_cyclic_owners(self):
        d = CyclicDistribution(8, 4)
        assert [d.owner(i) for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_block_cyclic_owners(self):
        d = BlockCyclicDistribution(16, 2, block_size=4)
        assert d.owner(0) == 0 and d.owner(3) == 0
        assert d.owner(4) == 1 and d.owner(7) == 1
        assert d.owner(8) == 0

    def test_vectorized_matches_scalar(self):
        for d in (
            BlockDistribution(100, 7),
            CyclicDistribution(100, 7),
            BlockCyclicDistribution(100, 7, 3),
        ):
            idx = np.arange(100)
            assert np.array_equal(
                d.owners(idx), [d.owner(int(i)) for i in idx]
            )

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            BlockDistribution(10, 2).owner(10)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockDistribution(0, 4)
        with pytest.raises(ValueError):
            CyclicDistribution(10, 0)
        with pytest.raises(ValueError):
            BlockCyclicDistribution(10, 2, 0)


class TestDoAllLoop:
    def test_block_partition_of_iterations(self):
        loop = DoAllLoop(8)
        assert loop.iterations_of(0, 4).tolist() == [0, 1]
        assert loop.iterations_of(3, 4).tolist() == [6, 7]

    def test_uneven_partition(self):
        loop = DoAllLoop(10)
        # chunk = ceil(10/4) = 3 -> last PE gets one iteration
        assert loop.iterations_of(3, 4).tolist() == [9]

    def test_empty_tail(self):
        # with 8 PEs and 4 iterations (chunk = 1), PEs 4..7 are idle
        loop = DoAllLoop(4)
        assert loop.iterations_of(3, 8).tolist() == [3]
        assert loop.iterations_of(7, 8).size == 0

    def test_reference_element(self):
        assert Reference(2, 1).element(5) == 11

    def test_validation(self):
        with pytest.raises(ValueError):
            DoAllLoop(0)
        with pytest.raises(ValueError):
            DoAllLoop(4, ())


class TestDerivePattern:
    def test_aligned_block_is_local(self):
        """A[i] with block distribution and block iteration partition:
        everything is owner-computes local."""
        lp = derive_pattern(DoAllLoop(64), BlockDistribution(64, 4), 4)
        assert lp.p_remote == 0.0
        assert lp.is_local_only

    def test_cyclic_on_block_iterations_is_mostly_remote(self):
        lp = derive_pattern(DoAllLoop(64), CyclicDistribution(64, 4), 4)
        assert lp.p_remote == pytest.approx(0.75)  # 1 - 1/P
        assert lp.pattern is not None

    def test_stencil_block_boundary_only(self):
        """A[i], A[i+1] under block: only one element per block boundary is
        remote."""
        n, p = 64, 4
        loop = DoAllLoop(n, (Reference(1, 0), Reference(1, 1)))
        lp = derive_pattern(loop, BlockDistribution(n, p), p)
        # references: 2 per iteration, ~2n total; remote: one per interior
        # boundary (3), minus the clamped out-of-range last access
        assert 0 < lp.p_remote < 0.05

    def test_stencil_remote_goes_to_neighbor(self):
        n, p = 64, 4
        loop = DoAllLoop(n, (Reference(1, 1),))
        lp = derive_pattern(loop, BlockDistribution(n, p), p)
        q = lp.pattern.module_probability_matrix(Torus2D(2))
        # PE 0's only remote access is to module 1 (the next block)
        assert q[0, 1] == pytest.approx(1.0)

    def test_per_pe_remote_exposed(self):
        n, p = 64, 4
        loop = DoAllLoop(n, (Reference(1, 1),))
        lp = derive_pattern(loop, BlockDistribution(n, p), p)
        # every PE except the last has exactly one remote access out of 16
        assert lp.per_pe_remote[0] == pytest.approx(1 / 16)
        assert lp.per_pe_remote[-1] == pytest.approx(0.0)

    def test_mismatched_module_count(self):
        with pytest.raises(ValueError, match="modules"):
            derive_pattern(DoAllLoop(10), BlockDistribution(10, 8), 4)

    def test_out_of_range_references_clamped(self):
        loop = DoAllLoop(16, (Reference(1, 100),))
        with pytest.raises(ValueError, match="no in-range"):
            derive_pattern(loop, BlockDistribution(16, 4), 4)


class TestEmpiricalPattern:
    def test_validation(self):
        with pytest.raises(ValueError, match="square"):
            EmpiricalPattern(np.ones((2, 3)))
        bad_diag = np.full((3, 3), 0.5)
        with pytest.raises(ValueError, match="diagonal"):
            EmpiricalPattern(bad_diag)
        neg = np.zeros((2, 2))
        neg[0, 1] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            EmpiricalPattern(neg)

    def test_row_sum_validation(self):
        q = np.zeros((2, 2))
        q[0, 1] = 0.7
        with pytest.raises(ValueError, match="sum to 1"):
            EmpiricalPattern(q)

    def test_machine_size_checked(self):
        q = np.zeros((4, 4))
        q[0, 1] = 1.0
        q[1, 0] = 1.0
        q[2, 3] = 1.0
        q[3, 2] = 1.0
        pat = EmpiricalPattern(q)
        with pytest.raises(ValueError, match="nodes"):
            pat.module_probability_matrix(Torus2D(3))

    def test_asymmetric_by_default(self):
        q = np.zeros((4, 4))
        for i in range(4):
            q[i, (i + 1) % 4] = 1.0
        assert not EmpiricalPattern(q).is_symmetric

    def test_distance_pmf(self):
        q = np.zeros((4, 4))
        for i in range(4):
            q[i, i ^ 1] = 1.0  # the x-neighbor: one hop on a 2x2 torus
        pmf = EmpiricalPattern(q).distance_pmf(Torus2D(2))
        assert pmf[1] == pytest.approx(1.0)


class TestModelIntegration:
    def test_block_beats_cyclic_end_to_end(self):
        """The compiler question, answered: block layout wins for a
        stencil."""
        n, p = 256, 16
        loop = DoAllLoop(n, (Reference(1, 0), Reference(1, 1)))
        block = derive_pattern(loop, BlockDistribution(n, p), p)
        cyclic = derive_pattern(loop, CyclicDistribution(n, p), p)

        base = paper_defaults()
        u_block = (
            MMSModel(base.with_(p_remote=block.p_remote), pattern=block.pattern)
            .solve()
            .processor_utilization
        )
        u_cyclic = (
            MMSModel(
                base.with_(p_remote=cyclic.p_remote), pattern=cyclic.pattern
            )
            .solve()
            .processor_utilization
        )
        assert u_block > 2 * u_cyclic

    def test_simulation_accepts_pattern_override(self):
        from repro.simulation import MMSSimulation

        n, p = 256, 16
        loop = DoAllLoop(n, (Reference(1, 0), Reference(1, 1)))
        lp = derive_pattern(loop, CyclicDistribution(n, p), p)
        params = paper_defaults(p_remote=lp.p_remote)
        model = MMSModel(params, pattern=lp.pattern).solve()
        sim = MMSSimulation(params, seed=19, pattern=lp.pattern).run(15_000.0)
        assert sim.processor_utilization == pytest.approx(
            model.processor_utilization, rel=0.08
        )
