"""Tests for 2-D block layouts and stencil pattern derivation."""

import numpy as np
import pytest

from repro.core import MMSModel
from repro.params import paper_defaults
from repro.workload import (
    FIVE_POINT,
    NINE_POINT,
    Block2D,
    Stencil,
    derive_stencil_pattern,
)


class TestBlock2D:
    def test_owner_by_tile(self):
        lay = Block2D(8, 8, 2, 2)  # 4x4 tiles
        assert lay.owner(0, 0) == 0
        assert lay.owner(7, 0) == 1
        assert lay.owner(0, 7) == 2
        assert lay.owner(7, 7) == 3

    def test_tile_shape(self):
        lay = Block2D(64, 32, 4, 2)
        assert (lay.bx, lay.by) == (16, 16)
        assert lay.num_pes == 8

    def test_must_tile_evenly(self):
        with pytest.raises(ValueError, match="tile evenly"):
            Block2D(10, 10, 4, 4)

    def test_bounds_checked(self):
        with pytest.raises(IndexError):
            Block2D(8, 8, 2, 2).owner(8, 0)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Block2D(0, 8, 2, 2)
        with pytest.raises(ValueError):
            Block2D(8, 8, 0, 2)


class TestStencil:
    def test_builtin_shapes(self):
        assert len(FIVE_POINT.offsets) == 5
        assert len(NINE_POINT.offsets) == 9

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Stencil(())


class TestDeriveStencilPattern:
    def test_center_only_stencil_is_local(self):
        lp = derive_stencil_pattern(Block2D(16, 16, 2, 2), Stencil(((0, 0),)))
        assert lp.p_remote == 0.0
        assert lp.is_local_only

    def test_five_point_perimeter_scaling(self):
        """Remote fraction tracks the tile's perimeter-to-area ratio:
        halving the tile side roughly doubles p_remote."""
        big = derive_stencil_pattern(Block2D(64, 64, 2, 2), FIVE_POINT)
        small = derive_stencil_pattern(Block2D(32, 32, 2, 2), FIVE_POINT)
        assert small.p_remote == pytest.approx(2 * big.p_remote, rel=0.15)

    def test_nine_point_more_remote_than_five(self):
        lay = Block2D(32, 32, 4, 4)
        five = derive_stencil_pattern(lay, FIVE_POINT)
        nine = derive_stencil_pattern(lay, NINE_POINT)
        assert nine.p_remote > five.p_remote

    def test_remote_reads_go_to_grid_neighbors(self):
        """A 5-point stencil only ever reaches the 4 adjacent tiles."""
        lay = Block2D(32, 32, 4, 4)
        lp = derive_stencil_pattern(lay, FIVE_POINT)
        q = lp.pattern._q
        from repro.topology import Mesh2D

        grid = Mesh2D(4, 4)  # tiles adjacency == mesh adjacency
        for src in range(16):
            targets = np.flatnonzero(q[src] > 0)
            for t in targets:
                assert grid.distance(src, int(t)) == 1

    def test_interior_vs_edge_tiles_differ(self):
        """Edge tiles have fewer remote sides: per-PE remote varies."""
        lp = derive_stencil_pattern(Block2D(32, 32, 4, 4), FIVE_POINT)
        corner = lp.per_pe_remote[0]
        center = lp.per_pe_remote[5]  # PE (1, 1)
        assert center > corner

    def test_exact_count_small_case(self):
        """2x2 tiles of 2x2 points, 5-point stencil: hand-countable."""
        lp = derive_stencil_pattern(Block2D(4, 4, 2, 2), FIVE_POINT)
        # per tile: 20 reads; PE0: remote reads = 2 (right column's +1x)
        # + 2 (bottom row's +1y) = 4; corners clamp at array edges
        assert lp.per_pe_remote[0] == pytest.approx(4 / 20)

    def test_rows_are_distributions(self):
        lp = derive_stencil_pattern(Block2D(32, 32, 4, 4), FIVE_POINT)
        q = lp.pattern._q
        assert np.allclose(q.sum(axis=1), 1.0)


class TestScalingStory:
    def test_strong_scaling_erodes_locality(self):
        """Fixed 64x64 problem: growing the machine shrinks tiles and
        raises p_remote."""
        p2 = derive_stencil_pattern(Block2D(64, 64, 2, 2), FIVE_POINT)
        p4 = derive_stencil_pattern(Block2D(64, 64, 4, 4), FIVE_POINT)
        p8 = derive_stencil_pattern(Block2D(64, 64, 8, 8), FIVE_POINT)
        assert p2.p_remote < p4.p_remote < p8.p_remote

    def test_weak_scaling_preserves_locality(self):
        """Fixed 16x16 tile per PE: p_remote approaches (from below) the
        interior-tile asymptote perimeter/(points*reads) = 4*16/(5*256) =
        0.05, instead of growing without bound as in strong scaling."""
        vals = [
            derive_stencil_pattern(
                Block2D(16 * k, 16 * k, k, k), FIVE_POINT
            ).p_remote
            for k in (2, 4, 8)
        ]
        asymptote = 4 * 16 / (5 * 256)
        assert all(v < asymptote for v in vals)
        assert vals == sorted(vals)  # converging up toward the asymptote
        # and growth decelerates (array-edge tiles become negligible)
        assert vals[2] - vals[1] < vals[1] - vals[0]

    def test_model_integration(self):
        lp = derive_stencil_pattern(Block2D(64, 64, 4, 4), FIVE_POINT)
        params = paper_defaults(k=4, p_remote=lp.p_remote)
        perf = MMSModel(params, pattern=lp.pattern).solve()
        assert perf.converged
        assert perf.processor_utilization > 0.8  # stencils are local-friendly
