"""Hotspot access pattern: asymmetric workloads end to end."""

import numpy as np
import pytest

from repro.core import MMSModel
from repro.params import paper_defaults
from repro.topology import Torus2D
from repro.workload import (
    GeometricPattern,
    HotspotPattern,
    build_visit_ratios,
    make_pattern,
)


@pytest.fixture
def t4():
    return Torus2D(4)


class TestHotspotPattern:
    def test_rows_normalized(self, t4):
        q = HotspotPattern(0, 0.5).module_probability_matrix(t4)
        assert np.allclose(q.sum(axis=1), 1.0)
        assert np.allclose(np.diag(q), 0.0)

    def test_hot_module_gets_the_mass(self, t4):
        q = HotspotPattern(0, 0.5).module_probability_matrix(t4)
        for src in range(1, t4.num_nodes):
            assert q[src, 0] > 0.5

    def test_hot_node_itself_uses_base(self, t4):
        base = GeometricPattern(0.5)
        q = HotspotPattern(0, 0.7, base).module_probability_matrix(t4)
        assert np.allclose(q[0], base.module_probability_matrix(t4)[0])

    def test_zero_fraction_reduces_to_base(self, t4):
        base = GeometricPattern(0.5)
        q = HotspotPattern(0, 0.0, base).module_probability_matrix(t4)
        assert np.allclose(q, base.module_probability_matrix(t4))

    def test_full_fraction_all_to_hot(self, t4):
        q = HotspotPattern(3, 1.0).module_probability_matrix(t4)
        for src in range(t4.num_nodes):
            if src != 3:
                assert q[src, 3] == pytest.approx(1.0)

    def test_marked_asymmetric(self):
        assert not HotspotPattern(0, 0.5).is_symmetric
        assert GeometricPattern(0.5).is_symmetric

    def test_distance_pmf_normalized(self, t4):
        pmf = HotspotPattern(0, 0.5).distance_pmf(t4)
        assert pmf.sum() == pytest.approx(1.0)
        assert pmf[0] == 0.0

    def test_hot_node_out_of_range(self):
        with pytest.raises(ValueError, match="hot node"):
            HotspotPattern(99, 0.5).module_probability_matrix(Torus2D(4))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HotspotPattern(0, 1.5)
        with pytest.raises(ValueError):
            HotspotPattern(-1, 0.5)

    def test_factory(self):
        pat = make_pattern("hotspot", 0.5, hot_node=2, hot_fraction=0.3)
        assert isinstance(pat, HotspotPattern)
        assert pat.hot_node == 2
        assert pat.hot_fraction == 0.3

    def test_equality(self):
        assert HotspotPattern(1, 0.3) == HotspotPattern(1, 0.3)
        assert HotspotPattern(1, 0.3) != HotspotPattern(2, 0.3)


class TestHotspotVisitRatios:
    def test_memory_rows_still_one(self, t4):
        vr = build_visit_ratios(t4, 0.4, HotspotPattern(0, 0.6))
        assert np.allclose(vr.memory.sum(axis=1), 1.0)

    def test_hot_memory_total_load_dominates(self, t4):
        vr = build_visit_ratios(t4, 0.4, HotspotPattern(0, 0.6))
        col_loads = vr.memory.sum(axis=0)
        assert col_loads[0] == max(col_loads)
        assert col_loads[0] > 2 * np.median(col_loads)


class TestHotspotModel:
    @pytest.fixture(scope="class")
    def hot_params(self):
        return paper_defaults(
            k=2, num_threads=4, p_remote=0.4, pattern="hotspot", hot_fraction=0.6
        )

    def test_symmetric_solver_rejected(self, hot_params):
        with pytest.raises(ValueError, match="asymmetric"):
            MMSModel(hot_params).solve(method="symmetric")

    def test_auto_uses_amva(self, hot_params):
        perf = MMSModel(hot_params).solve()
        assert perf.method == "amva"
        assert perf.converged

    def test_per_class_utilizations_exposed(self, hot_params):
        perf = MMSModel(hot_params).solve()
        assert perf.per_class_utilization is not None
        assert len(perf.per_class_utilization) == 4

    def test_hot_memory_is_the_bottleneck(self, hot_params):
        perf = MMSModel(hot_params).solve()
        base = MMSModel(hot_params.with_(pattern="geometric")).solve(method="amva")
        assert perf.memory.utilization > base.memory.utilization

    def test_hotspot_degrades_throughput(self, hot_params):
        hot = MMSModel(hot_params).solve()
        base = MMSModel(hot_params.with_(pattern="geometric")).solve()
        assert hot.processor_utilization < base.processor_utilization

    def test_multiporting_the_hot_memory_helps(self, hot_params):
        hot = MMSModel(hot_params).solve()
        ported = MMSModel(hot_params.with_(memory_ports=2)).solve()
        assert ported.processor_utilization > hot.processor_utilization

    def test_simulation_agrees(self, hot_params):
        """The DES draws destinations from the same hotspot matrix -- the
        asymmetric AMVA must track it."""
        from repro.simulation import simulate

        perf = MMSModel(hot_params).solve()
        sim = simulate(hot_params, duration=30_000.0, seed=17)
        assert sim.processor_utilization == pytest.approx(
            perf.processor_utilization, rel=0.07
        )
        assert sim.l_obs == pytest.approx(perf.l_obs, rel=0.12)
