"""Unit tests for remote-access patterns."""

import numpy as np
import pytest

from repro.topology import Torus2D
from repro.workload import GeometricPattern, UniformPattern, make_pattern


@pytest.fixture
def t4():
    return Torus2D(4)


class TestGeometricPattern:
    def test_module_probabilities_normalized(self, t4):
        q = GeometricPattern(0.5).module_probabilities(t4, 0)
        assert q.sum() == pytest.approx(1.0)

    def test_no_self_access(self, t4):
        for src in range(t4.num_nodes):
            q = GeometricPattern(0.5).module_probabilities(t4, src)
            assert q[src] == 0.0

    def test_equal_within_distance_class(self, t4):
        q = GeometricPattern(0.5).module_probabilities(t4, 0)
        for h in range(1, t4.max_distance + 1):
            vals = q[t4.nodes_at_distance(0, h)]
            assert np.allclose(vals, vals[0])

    def test_per_module_value(self, t4):
        """Distance-class mass p^h/a split among count_h modules."""
        pat = GeometricPattern(0.5)
        pmf = pat.distance_pmf(t4)
        q = pat.module_probabilities(t4, 0)
        counts = t4.distance_counts
        for h in range(1, t4.max_distance + 1):
            node = t4.nodes_at_distance(0, h)[0]
            assert q[node] == pytest.approx(pmf[h] / counts[h])

    def test_closer_modules_more_likely(self, t4):
        q = GeometricPattern(0.3).module_probabilities(t4, 0)
        n1 = t4.nodes_at_distance(0, 1)[0]
        n2 = t4.nodes_at_distance(0, 2)[0]
        assert q[n1] > q[n2]

    def test_matrix_matches_rows(self, t4):
        pat = GeometricPattern(0.5)
        mat = pat.module_probability_matrix(t4)
        for src in (0, 5, 15):
            assert np.allclose(mat[src], pat.module_probabilities(t4, src))

    def test_matrix_translation_symmetric(self, t4):
        mat = GeometricPattern(0.5).module_probability_matrix(t4)
        b = 6
        for j in range(t4.num_nodes):
            assert mat[0, j] == pytest.approx(
                mat[t4.translate(0, b), t4.translate(j, b)]
            )

    def test_davg(self, t4):
        assert GeometricPattern(0.5).d_avg(t4) == pytest.approx(1.7333333)

    def test_equality_and_hash(self):
        assert GeometricPattern(0.5) == GeometricPattern(0.5)
        assert GeometricPattern(0.5) != GeometricPattern(0.4)
        assert hash(GeometricPattern(0.5)) == hash(GeometricPattern(0.5))

    def test_invalid_psw(self):
        with pytest.raises(ValueError):
            GeometricPattern(0.0)


class TestUniformPattern:
    def test_equal_probabilities(self, t4):
        q = UniformPattern().module_probabilities(t4, 0)
        remote = np.delete(q, 0)
        assert np.allclose(remote, 1.0 / 15)

    def test_davg_4x4(self, t4):
        # sum(h * count_h) / 15 = (4 + 12 + 12 + 4) / 15
        assert UniformPattern().d_avg(t4) == pytest.approx(32 / 15)

    def test_equality(self):
        assert UniformPattern() == UniformPattern()
        assert UniformPattern() != GeometricPattern(0.5)


class TestFactory:
    def test_geometric(self):
        pat = make_pattern("geometric", 0.3)
        assert isinstance(pat, GeometricPattern)
        assert pat.p_sw == 0.3

    def test_uniform(self):
        assert isinstance(make_pattern("uniform"), UniformPattern)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_pattern("zipf")
