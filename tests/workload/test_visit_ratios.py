"""Unit tests for the CQN visit ratios (the paper's em, ei, eo)."""

import numpy as np
import pytest

from repro.params import paper_defaults
from repro.topology import Torus2D
from repro.workload import (
    GeometricPattern,
    UniformPattern,
    build_visit_ratios,
)
from repro.workload.visit_ratios import visit_ratios_for


@pytest.fixture
def t4():
    return Torus2D(4)


@pytest.fixture
def vr(t4):
    return build_visit_ratios(t4, 0.2, GeometricPattern(0.5))


class TestMemoryVisits:
    def test_one_access_per_cycle(self, vr):
        """em rows sum to 1: each cycle issues exactly one memory access."""
        assert np.allclose(vr.memory.sum(axis=1), 1.0)

    def test_local_share(self, vr):
        assert np.allclose(np.diag(vr.memory), 0.8)

    def test_remote_share(self, vr):
        off = vr.memory.copy()
        np.fill_diagonal(off, 0.0)
        assert np.allclose(off.sum(axis=1), 0.2)

    def test_zero_p_remote_local_only(self, t4):
        vr = build_visit_ratios(t4, 0.0, GeometricPattern(0.5))
        assert np.allclose(vr.memory, np.eye(t4.num_nodes))
        assert vr.inbound.sum() == 0.0
        assert vr.outbound.sum() == 0.0

    def test_single_node_machine(self):
        vr = build_visit_ratios(Torus2D(1), 0.2, GeometricPattern(0.5))
        assert vr.memory.shape == (1, 1)
        assert vr.memory[0, 0] == 1.0


class TestOutboundVisits:
    def test_source_outbound_carries_all_requests(self, vr):
        """eo[i, i] = p_remote: every remote request exits at the source."""
        assert np.allclose(np.diag(vr.outbound), 0.2)

    def test_destination_outbound_equals_em(self, vr):
        """Paper: eo[i, j] = em[i, j] for j != i (responses)."""
        p = vr.memory.shape[0]
        for i in range(p):
            for j in range(p):
                if i != j:
                    assert vr.outbound[i, j] == pytest.approx(vr.memory[i, j])

    def test_total_outbound_per_cycle(self, vr):
        """Two outbound traversals per remote access (request + response)."""
        assert np.allclose(vr.outbound.sum(axis=1), 2 * 0.2)


class TestInboundVisits:
    def test_total_inbound_is_two_davg(self, t4):
        """ei row sums = 2 * p_remote * d_avg (round trip crosses 2h inbound
        switches at distance h)."""
        pat = GeometricPattern(0.5)
        vr = build_visit_ratios(t4, 0.2, pat)
        expected = 2 * 0.2 * pat.d_avg(t4)
        assert np.allclose(vr.inbound.sum(axis=1), expected)

    def test_uniform_total_inbound(self, t4):
        pat = UniformPattern()
        vr = build_visit_ratios(t4, 0.4, pat)
        expected = 2 * 0.4 * pat.d_avg(t4)
        assert np.allclose(vr.inbound.sum(axis=1), expected)

    def test_own_inbound_on_return_only(self, vr):
        """Class i's messages re-enter through its own inbound switch exactly
        once per remote access (the final hop home)."""
        assert np.allclose(np.diag(vr.inbound), 0.2)

    def test_nonnegative(self, vr):
        assert (vr.inbound >= 0).all()


class TestSymmetry:
    def test_classes_are_translations(self, t4):
        """All classes' visit vectors are torus translations of class 0's."""
        vr = build_visit_ratios(t4, 0.3, GeometricPattern(0.5))
        for b in range(t4.num_nodes):
            perm = [t4.translate(n, b) for n in range(t4.num_nodes)]
            for name in ("memory", "inbound", "outbound"):
                arr = getattr(vr, name)
                assert np.allclose(arr[b, perm], arr[0]), name

    def test_network_visit_total(self, t4):
        vr = build_visit_ratios(t4, 0.2, GeometricPattern(0.5))
        expected = 2 * 0.2 * (GeometricPattern(0.5).d_avg(t4) + 1.0)
        assert vr.total_network_visits(0) == pytest.approx(expected)


class TestFromParams:
    def test_wrapper(self):
        vr = visit_ratios_for(paper_defaults(p_remote=0.4))
        assert np.allclose(np.diag(vr.memory), 0.6)

    def test_invalid_p_remote(self, t4):
        with pytest.raises(ValueError):
            build_visit_ratios(t4, 1.2, GeometricPattern(0.5))
