"""Dashboard rendering: fabric fleet view, manifests, traces, series."""

from __future__ import annotations

import json
from html.parser import HTMLParser

import pytest

from repro import obs
from repro.obs import trace as obs_trace
from repro.cli import main
from repro.obs import trace_span
from repro.obs.dashboard import render_dashboard, write_dashboard
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import MetricsRecorder
from repro.params import paper_defaults
from repro.runner import JobSpec, SweepRunner


class PageIndex(HTMLParser):
    """Collects element ids, rect counts per svg, and row counts per table."""

    def __init__(self) -> None:
        super().__init__()
        self.ids: set[str] = set()
        self.rects: dict[str, int] = {}
        self.rows: dict[str, int] = {}
        self._svg: str | None = None
        self._table: str | None = None

    def handle_starttag(self, tag: str, attrs) -> None:
        a = dict(attrs)
        if "id" in a:
            self.ids.add(a["id"])
        if tag == "svg":
            self._svg = a.get("id")
            if self._svg:
                self.rects.setdefault(self._svg, 0)
        elif tag == "rect" and self._svg:
            self.rects[self._svg] += 1
        elif tag == "table":
            self._table = a.get("id")
            if self._table:
                self.rows.setdefault(self._table, 0)
        elif tag == "tr" and self._table:
            self.rows[self._table] += 1

    def handle_endtag(self, tag: str) -> None:
        if tag == "svg":
            self._svg = None
        elif tag == "table":
            self._table = None


def parse(html: str) -> PageIndex:
    idx = PageIndex()
    idx.feed(html)
    return idx


def _specs(n: int = 4) -> list[JobSpec]:
    return [
        JobSpec(params=paper_defaults(num_threads=nt, p_remote=0.2))
        for nt in range(1, n + 1)
    ]


@pytest.fixture(scope="module")
def fleet_dir(tmp_path_factory):
    """A finished 3-worker traced fabric sweep (the acceptance scenario)."""
    from repro.fabric import FabricScheduler

    fabric_dir = tmp_path_factory.mktemp("fleet")
    with FabricScheduler(
        fabric_dir, poll_s=0.05, trace_workers=True
    ) as scheduler:
        report = scheduler.run(_specs(6), workers=3, timeout=180)
    assert report.ok
    manifest_path = fabric_dir / "manifest.json"
    report.manifest.to_json(manifest_path)
    return fabric_dir


class TestFabricDashboard:
    def test_fleet_timeline_and_tables(self, fleet_dir):
        idx = parse(render_dashboard(fleet_dir))
        # the per-worker Gantt: one rect per terminal trial
        assert idx.rects.get("timeline", 0) == 6
        # per-worker table: header + one row per worker
        assert idx.rows.get("workers", 0) == 1 + 3
        assert "overview" in idx.ids
        assert "stages" in idx.ids  # merged worker traces attribution

    def test_cli_writes_default_output(self, fleet_dir):
        assert main(["dashboard", str(fleet_dir)]) == 0
        out = fleet_dir / "dashboard.html"
        assert out.exists()
        assert "timeline" in parse(out.read_text()).ids

    def test_explicit_out_and_experiment(self, fleet_dir, tmp_path):
        out = tmp_path / "fleet.html"
        assert main(
            ["dashboard", str(fleet_dir), "--out", str(out)]
        ) == 0
        assert out.exists()

    def test_unknown_experiment_fails_cleanly(self, fleet_dir, capsys):
        assert main(
            ["dashboard", str(fleet_dir), "--experiment", "nope"]
        ) == 1
        assert "dashboard failed" in capsys.readouterr().err

    def test_fabric_manifest_renders_fleet_view(self, fleet_dir):
        idx = parse(render_dashboard(fleet_dir / "manifest.json"))
        assert idx.rows.get("workers", 0) == 1 + 3
        assert idx.rects.get("timeline", 0) == 6  # via fabric_dir in manifest
        assert "overview" in idx.ids


class TestManifestDashboard:
    def test_single_host_manifest(self, tmp_path):
        report = SweepRunner(jobs=1).run(_specs(2))
        path = tmp_path / "run.json"
        report.manifest.to_json(path)
        idx = parse(render_dashboard(path))
        assert "overview" in idx.ids
        assert idx.rows.get("stages", 0) > 1  # header + stage rows

    def test_manifest_with_recorder_series(self, tmp_path):
        from repro.obs.timeseries import start_recorder, stop_recorder

        start_recorder(interval_s=0.05)
        try:
            report = SweepRunner(jobs=1).run(_specs(2))
        finally:
            stop_recorder()
        assert report.manifest.series is not None
        path = tmp_path / "run.json"
        report.manifest.to_json(path)
        idx = parse(render_dashboard(path))
        assert "series" in idx.ids


class TestTraceDashboard:
    def test_span_lanes_and_attribution(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        prev = obs_trace.configure(trace=str(path))
        try:
            with trace_span("sweep.run"):
                with trace_span("solve.batch"):
                    pass
                with trace_span("store.write"):
                    pass
            obs.get_tracer().close()
        finally:
            obs_trace.configure(**prev)
        idx = parse(render_dashboard(path))
        assert idx.rects.get("timeline", 0) == 3
        assert idx.rows.get("stages", 0) == 1 + 3


class TestSeriesDashboard:
    def test_seriesz_dump_renders_sparklines(self, tmp_path):
        reg = MetricsRegistry()
        clock = iter(float(t) for t in range(100))
        rec = MetricsRecorder(reg=reg, clock=lambda: next(clock))
        c = reg.counter("solver.points")
        h = reg.histogram("solve.latency_s", buckets=(0.1, 1.0))
        for _ in range(5):
            c.inc(3)
            h.observe(0.2)
            rec.sample()
        path = tmp_path / "series.json"
        path.write_text(json.dumps(rec.window()))
        idx = parse(render_dashboard(path))
        assert idx.rows.get("series", 0) == 1 + 1  # header + the counter
        assert idx.rows.get("quantiles", 0) == 1 + 1


class TestInputValidation:
    def test_directory_without_fabric_db(self, tmp_path):
        with pytest.raises(ValueError, match="no fabric.db"):
            render_dashboard(tmp_path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            render_dashboard(path)

    def test_write_dashboard_default_names(self, tmp_path):
        path = tmp_path / "run.json"
        report = SweepRunner(jobs=1).run(_specs(1))
        report.manifest.to_json(path)
        out = write_dashboard(path)
        assert out == tmp_path / "run-dashboard.html"
        assert out.read_text().startswith("<!doctype html>")
