"""EventSink: lazy open, meta header, one complete JSON line per event."""

import json

from repro.obs import EventSink


class TestLazyOpen:
    def test_no_file_until_first_write(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = EventSink(path, meta={"schema": "repro-trace/1"})
        assert not path.exists()
        sink.write({"kind": "span", "name": "s"})
        assert path.exists()
        sink.close()

    def test_existing_file_not_clobbered_by_init(self, tmp_path):
        """A worker that merely constructs a sink (REPRO_TRACE inherited)
        must not truncate the parent's trace file."""
        path = tmp_path / "t.jsonl"
        path.write_text("precious\n")
        EventSink(path, meta={"schema": "repro-trace/1"})
        assert path.read_text() == "precious\n"

    def test_close_without_writes_emits_meta_only_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = EventSink(path, meta={"schema": "repro-trace/1"})
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0]) == {"kind": "meta", "schema": "repro-trace/1"}


class TestWriting:
    def test_meta_is_first_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with EventSink(path, meta={"schema": "repro-trace/1", "v": 2}) as sink:
            sink.write({"kind": "span", "name": "a"})
            sink.write({"kind": "span", "name": "b"})
        lines = [json.loads(x) for x in path.read_text().splitlines()]
        assert lines[0]["kind"] == "meta" and lines[0]["v"] == 2
        assert [x.get("name") for x in lines[1:]] == ["a", "b"]

    def test_events_written_counts_meta(self, tmp_path):
        sink = EventSink(tmp_path / "t.jsonl", meta={"schema": "repro-trace/1"})
        sink.write({"kind": "span"})
        assert sink.events_written == 2  # meta + span

    def test_truncates_previous_trace_on_first_write(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with EventSink(path) as sink:
            sink.write({"kind": "span", "name": "old"})
        with EventSink(path) as sink:
            sink.write({"kind": "span", "name": "new"})
        lines = [json.loads(x) for x in path.read_text().splitlines()]
        assert [x["name"] for x in lines] == ["new"]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "down" / "t.jsonl"
        with EventSink(path) as sink:
            sink.write({"kind": "span"})
        assert path.exists()

    def test_lines_are_compact_sorted_json(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with EventSink(path) as sink:
            sink.write({"b": 1, "a": 2, "kind": "span"})
        line = path.read_text().splitlines()[0]
        assert line == '{"a":2,"b":1,"kind":"span"}'
