"""Tracer: nesting, the no-op fast path, and cross-process adoption."""

import os

import pytest

from repro import obs
from repro.obs import NOOP_SPAN, Tracer, trace_span
from repro.obs.trace import _tracer_from_env


@pytest.fixture
def tracer():
    """A buffering tracer installed as the global one, restored after."""
    t = Tracer()
    prev = obs.configure(tracer=t)
    yield t
    obs.configure(**prev)


class TestNoopFastPath:
    def test_disabled_returns_shared_noop(self):
        prev = obs.configure(trace=False)
        try:
            assert not obs.enabled()
            sp = trace_span("anything", k=1)
            assert sp is NOOP_SPAN
            with sp as inner:
                inner.set(ignored=True)  # must be harmless
        finally:
            obs.configure(**prev)

    def test_traced_decorator_passthrough_when_disabled(self):
        prev = obs.configure(trace=False)
        try:

            @obs.traced("t.fn")
            def fn(x):
                return x + 1

            assert fn(1) == 2
        finally:
            obs.configure(**prev)


class TestNesting:
    def test_child_parents_to_enclosing_span(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        spans = {s["name"]: s for s in tracer.buffer}
        assert spans["inner"]["parent_id"] == outer.span_id
        assert spans["outer"]["parent_id"] is None
        # children close (and emit) before their parents
        assert tracer.buffer[0]["name"] == "inner"

    def test_module_trace_span_uses_global_tracer(self, tracer):
        with trace_span("via.module", points=3) as sp:
            assert tracer.current() is sp
        assert tracer.buffer[0]["attrs"] == {"points": 3}

    def test_exception_sets_error_attr_and_propagates(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        assert tracer.buffer[0]["attrs"]["error"] == "RuntimeError"

    def test_durations_nonnegative_and_ids_unique(self, tracer):
        for _ in range(5):
            with tracer.span("s"):
                pass
        ids = [s["span_id"] for s in tracer.buffer]
        assert len(set(ids)) == 5
        assert all(s["duration_s"] >= 0 for s in tracer.buffer)
        assert all(s["pid"] == os.getpid() for s in tracer.buffer)


class TestAdoption:
    def test_adopted_spans_parent_into_context(self, tracer):
        with tracer.span("parent") as parent:
            ctx = tracer.context()
        assert ctx == {"trace_id": tracer.trace_id, "parent_id": parent.span_id}

        worker = Tracer.adopt(ctx)
        with worker.span("worker.root"):
            with worker.span("worker.child"):
                pass
        shipped = worker.drain()
        assert worker.buffer == []
        by_name = {s["name"]: s for s in shipped}
        assert by_name["worker.root"]["parent_id"] == parent.span_id
        assert by_name["worker.child"]["parent_id"] == by_name["worker.root"]["span_id"]

        tracer.ingest(shipped)
        names = [s["name"] for s in tracer.buffer]
        assert "worker.root" in names and "worker.child" in names
        assert all(s["trace_id"] == tracer.trace_id for s in tracer.buffer)

    def test_traced_decorator_records_span(self, tracer):
        @obs.traced("t.decorated")
        def fn():
            return 7

        assert fn() == 7
        assert tracer.buffer[0]["name"] == "t.decorated"


class TestEnvConfiguration:
    def test_off_values(self, monkeypatch):
        for value in ("", "0", "false", "OFF"):
            monkeypatch.setenv("REPRO_TRACE", value)
            assert _tracer_from_env() is None

    def test_buffering_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        t = _tracer_from_env()
        assert t is not None and t.sink is None

    def test_path_value_opens_sink(self, monkeypatch, tmp_path):
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        t = _tracer_from_env()
        assert t is not None and t.sink is not None
        # lazy sink: importing/configuring must not clobber an existing file
        assert not path.exists()
        t.close()
