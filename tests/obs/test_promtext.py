"""Prometheus text exposition: naming, format shape, histogram semantics."""

import re

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.promtext import CONTENT_TYPE, prometheus_name, render_prometheus

# the metric-name charset the exposition format requires
_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# every sample line: name, optional {labels}, space, value
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le=\"[^\"]+\"\})? -?[0-9.+eE]+(\+Inf)?$"
)


class TestNaming:
    def test_dotted_names_flatten_with_namespace(self):
        assert prometheus_name("serve.request_latency_s") == (
            "repro_serve_request_latency_s"
        )

    def test_hostile_chars_become_underscores(self):
        name = prometheus_name("fabric.worker-3.busy%")
        assert _NAME.match(name)

    def test_no_namespace(self):
        assert prometheus_name("solver.points", namespace="") == "solver_points"

    def test_leading_digit_guarded(self):
        assert _NAME.match(prometheus_name("9lives", namespace=""))


@pytest.fixture()
def snapshot():
    reg = MetricsRegistry()
    reg.counter("solver.points").inc(42)
    reg.gauge("serve.queue_depth").set(3)
    h = reg.histogram("solve.latency_s", buckets=(0.1, 0.5, 1.0))
    for v in (0.05, 0.3, 0.3, 0.7, 5.0):
        h.observe(v)
    return reg.snapshot()


class TestRender:
    def test_every_line_is_wellformed(self, snapshot):
        text = render_prometheus(snapshot)
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert _SAMPLE.match(line), line

    def test_help_and_type_precede_each_metric(self, snapshot):
        lines = render_prometheus(snapshot).splitlines()
        i = lines.index("repro_solver_points 42")
        assert lines[i - 2] == "# HELP repro_solver_points repro counter solver.points"
        assert lines[i - 1] == "# TYPE repro_solver_points counter"

    def test_counter_and_gauge_values(self, snapshot):
        text = render_prometheus(snapshot)
        assert "repro_solver_points 42" in text
        assert "repro_serve_queue_depth 3" in text
        assert "# TYPE repro_serve_queue_depth gauge" in text

    def test_histogram_buckets_are_cumulative(self, snapshot):
        text = render_prometheus(snapshot)
        # 1 obs <= 0.1, 3 <= 0.5, 4 <= 1.0, 5 total
        assert 'repro_solve_latency_s_bucket{le="0.1"} 1' in text
        assert 'repro_solve_latency_s_bucket{le="0.5"} 3' in text
        assert 'repro_solve_latency_s_bucket{le="1"} 4' in text
        assert 'repro_solve_latency_s_bucket{le="+Inf"} 5' in text

    def test_histogram_sum_and_count(self, snapshot):
        text = render_prometheus(snapshot)
        assert "repro_solve_latency_s_count 5" in text
        assert re.search(r"repro_solve_latency_s_sum 6\.35\b", text)

    def test_inf_count_equals_count_sample(self, snapshot):
        """+Inf bucket must equal _count -- scrapers validate this."""
        text = render_prometheus(snapshot)
        inf = re.search(r'_bucket\{le="\+Inf"\} (\d+)', text).group(1)
        count = re.search(r"_count (\d+)", text).group(1)
        assert inf == count

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({"counters": {}, "gauges": {}}) == ""

    def test_content_type_pins_version(self):
        assert "version=0.0.4" in CONTENT_TYPE
