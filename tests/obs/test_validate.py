"""repro-trace/1 schema validation."""

import json

import pytest

from repro.obs import EventSink, Tracer, validate_trace
from repro.obs.validate import TraceValidationError, validate_events


def _span(span_id: str, parent: str | None = None, name: str = "s", **over):
    base = {
        "kind": "span",
        "trace_id": "t1",
        "span_id": span_id,
        "parent_id": parent,
        "name": name,
        "t_start": 0.0,
        "duration_s": 0.001,
        "attrs": {},
        "pid": 1234,
    }
    base.update(over)
    return base


META = {"kind": "meta", "schema": "repro-trace/1"}


class TestValidEvents:
    def test_minimal_trace(self):
        summary = validate_events([META, _span("a")])
        assert summary.spans == 1 and summary.roots == 1
        assert summary.span_names == {"s": 1}

    def test_nested_and_metrics(self):
        events = [
            META,
            _span("a"),
            _span("b", parent="a", name="child"),
            {"kind": "metrics", "metrics": {"counters": {}}},
        ]
        summary = validate_events(events)
        assert summary.spans == 2 and summary.roots == 1
        assert summary.metrics_records == 1
        assert summary.span_durations["child"] == pytest.approx(0.001)

    def test_child_may_precede_parent_in_file_order(self):
        # spans are emitted on close, so children land before parents
        summary = validate_events([META, _span("b", parent="a"), _span("a")])
        assert summary.roots == 1


class TestRejections:
    def test_meta_must_be_first(self):
        with pytest.raises(TraceValidationError, match="meta record"):
            validate_events([_span("a"), META])

    def test_unknown_schema(self):
        with pytest.raises(TraceValidationError, match="schema"):
            validate_events([{"kind": "meta", "schema": "other/9"}, _span("a")])

    def test_unknown_kind(self):
        with pytest.raises(TraceValidationError, match="unknown kind"):
            validate_events([META, {"kind": "mystery"}])

    def test_missing_span_field(self):
        bad = _span("a")
        del bad["duration_s"]
        with pytest.raises(TraceValidationError, match="duration_s"):
            validate_events([META, bad])

    def test_negative_duration(self):
        with pytest.raises(TraceValidationError, match="negative"):
            validate_events([META, _span("a", duration_s=-1.0)])

    def test_duplicate_span_id(self):
        with pytest.raises(TraceValidationError, match="duplicate"):
            validate_events([META, _span("a"), _span("a")])

    def test_unknown_parent(self):
        with pytest.raises(TraceValidationError, match="missing parent ghost"):
            validate_events([META, _span("a", parent="ghost")])

    def test_zero_spans(self):
        with pytest.raises(TraceValidationError, match="no spans"):
            validate_events([META])


class TestValidateTraceFile:
    def test_round_trip_through_sink(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(sink=EventSink(path, meta={"schema": "repro-trace/1"}))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        tracer.close()
        summary = validate_trace(path)
        assert summary.spans == 2 and summary.roots == 1

    def test_invalid_json_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps(META) + "\nnot json\n")
        with pytest.raises(TraceValidationError, match="invalid JSON"):
            validate_trace(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        with pytest.raises(TraceValidationError, match="empty"):
            validate_trace(path)


class TestCrossProcessParentage:
    """Merged multi-pid traces: closed linkage across process boundaries."""

    def _merged(self):
        # scheduler (pid 1) root; worker spans (pids 2, 3) adopted under it
        return [
            META,
            _span("root", None, "sweep.run", pid=1),
            _span("w1", "root", "worker.lease", pid=2),
            _span("w1s", "w1", "solve.batch", pid=2),
            _span("w2", "root", "worker.lease", pid=3),
        ]

    def test_cross_pid_parentage_validates(self):
        summary = validate_events(self._merged())
        assert summary.spans == 4
        assert summary.roots == 1
        assert summary.pids == {1, 2, 3}
        assert summary.orphans == []

    def test_all_orphans_collected_not_just_first(self):
        events = self._merged() + [
            _span("o1", "gone-a", "solve.batch", pid=2),
            _span("o2", "gone-b", "solve.batch", pid=3),
        ]
        with pytest.raises(TraceValidationError) as exc:
            validate_events(events)
        msg = str(exc.value)
        assert "2 orphaned span(s)" in msg
        assert "o1 -> missing parent gone-a" in msg
        assert "o2 -> missing parent gone-b" in msg

    def test_lenient_mode_reports_instead_of_raising(self):
        events = self._merged() + [_span("o1", "gone", "solve.batch", pid=2)]
        summary = validate_events(events, require_closed_parents=False)
        assert summary.orphans == [("o1", "gone")]


class TestValidateScript:
    """scripts/validate_trace.py: exit codes and orphan listing."""

    @pytest.fixture()
    def script_main(self):
        import importlib.util
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        spec = importlib.util.spec_from_file_location(
            "validate_trace_script", root / "scripts" / "validate_trace.py"
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        return mod.main

    def _write(self, tmp_path, events):
        path = tmp_path / "t.jsonl"
        path.write_text("".join(json.dumps(e) + "\n" for e in events))
        return str(path)

    def test_valid_merged_trace_passes(self, tmp_path, script_main, capsys):
        path = self._write(
            tmp_path,
            [
                META,
                _span("root", None, "sweep.run", pid=1),
                _span("w1", "root", "solve.batch", pid=2),
            ],
        )
        assert script_main([path, "--min-pids", "2"]) == 0
        assert "2 pids" in capsys.readouterr().out

    def test_orphans_exit_nonzero_and_are_listed(
        self, tmp_path, script_main, capsys
    ):
        path = self._write(
            tmp_path,
            [
                META,
                _span("a", None, "s", pid=1),
                _span("o1", "gone-a", "s", pid=2),
                _span("o2", "gone-b", "s", pid=2),
            ],
        )
        assert script_main([path]) == 1
        err = capsys.readouterr().err
        assert "2 orphaned span(s)" in err
        assert "o1 -> missing parent gone-a" in err
        assert "o2 -> missing parent gone-b" in err

    def test_min_pids_gate(self, tmp_path, script_main, capsys):
        path = self._write(tmp_path, [META, _span("a", None, "s", pid=1)])
        assert script_main([path, "--min-pids", "2"]) == 1
        assert "1 process(es) < required 2" in capsys.readouterr().err

    def test_min_spans_gate(self, tmp_path, script_main, capsys):
        path = self._write(tmp_path, [META, _span("a", None, "s", pid=1)])
        assert script_main([path, "--min-spans", "5"]) == 1
        assert "1 spans < required 5" in capsys.readouterr().err
