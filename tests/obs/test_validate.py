"""repro-trace/1 schema validation."""

import json

import pytest

from repro.obs import EventSink, Tracer, validate_trace
from repro.obs.validate import TraceValidationError, validate_events


def _span(span_id: str, parent: str | None = None, name: str = "s", **over):
    base = {
        "kind": "span",
        "trace_id": "t1",
        "span_id": span_id,
        "parent_id": parent,
        "name": name,
        "t_start": 0.0,
        "duration_s": 0.001,
        "attrs": {},
        "pid": 1234,
    }
    base.update(over)
    return base


META = {"kind": "meta", "schema": "repro-trace/1"}


class TestValidEvents:
    def test_minimal_trace(self):
        summary = validate_events([META, _span("a")])
        assert summary.spans == 1 and summary.roots == 1
        assert summary.span_names == {"s": 1}

    def test_nested_and_metrics(self):
        events = [
            META,
            _span("a"),
            _span("b", parent="a", name="child"),
            {"kind": "metrics", "metrics": {"counters": {}}},
        ]
        summary = validate_events(events)
        assert summary.spans == 2 and summary.roots == 1
        assert summary.metrics_records == 1
        assert summary.span_durations["child"] == pytest.approx(0.001)

    def test_child_may_precede_parent_in_file_order(self):
        # spans are emitted on close, so children land before parents
        summary = validate_events([META, _span("b", parent="a"), _span("a")])
        assert summary.roots == 1


class TestRejections:
    def test_meta_must_be_first(self):
        with pytest.raises(TraceValidationError, match="meta record"):
            validate_events([_span("a"), META])

    def test_unknown_schema(self):
        with pytest.raises(TraceValidationError, match="schema"):
            validate_events([{"kind": "meta", "schema": "other/9"}, _span("a")])

    def test_unknown_kind(self):
        with pytest.raises(TraceValidationError, match="unknown kind"):
            validate_events([META, {"kind": "mystery"}])

    def test_missing_span_field(self):
        bad = _span("a")
        del bad["duration_s"]
        with pytest.raises(TraceValidationError, match="duration_s"):
            validate_events([META, bad])

    def test_negative_duration(self):
        with pytest.raises(TraceValidationError, match="negative"):
            validate_events([META, _span("a", duration_s=-1.0)])

    def test_duplicate_span_id(self):
        with pytest.raises(TraceValidationError, match="duplicate"):
            validate_events([META, _span("a"), _span("a")])

    def test_unknown_parent(self):
        with pytest.raises(TraceValidationError, match="unknown parent"):
            validate_events([META, _span("a", parent="ghost")])

    def test_zero_spans(self):
        with pytest.raises(TraceValidationError, match="no spans"):
            validate_events([META])


class TestValidateTraceFile:
    def test_round_trip_through_sink(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(sink=EventSink(path, meta={"schema": "repro-trace/1"}))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        tracer.close()
        summary = validate_trace(path)
        assert summary.spans == 2 and summary.roots == 1

    def test_invalid_json_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps(META) + "\nnot json\n")
        with pytest.raises(TraceValidationError, match="invalid JSON"):
            validate_trace(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        with pytest.raises(TraceValidationError, match="empty"):
            validate_trace(path)
