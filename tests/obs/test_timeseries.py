"""MetricsRecorder: ring buffer, windows, rates, quantiles, globals."""

import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    MetricsRecorder,
    get_recorder,
    start_recorder,
    stop_recorder,
)


class FakeClock:
    """Deterministic clock: advances only when told to."""

    def __init__(self, t: float = 1000.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def tick(self, dt: float = 1.0) -> None:
        self.t += dt


@pytest.fixture()
def reg():
    return MetricsRegistry()


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def rec(reg, clock):
    return MetricsRecorder(interval_s=1.0, capacity=10, reg=reg, clock=clock)


class TestConstruction:
    def test_rejects_nonpositive_interval(self, reg):
        with pytest.raises(ValueError):
            MetricsRecorder(interval_s=0.0, reg=reg)
        with pytest.raises(ValueError):
            MetricsRecorder(interval_s=-1.0, reg=reg)

    def test_rejects_tiny_capacity(self, reg):
        with pytest.raises(ValueError):
            MetricsRecorder(capacity=1, reg=reg)

    def test_not_running_until_started(self, rec):
        assert not rec.running


class TestSampling:
    def test_sample_is_timestamped_snapshot(self, rec, reg, clock):
        reg.counter("solver.points").inc(3)
        s = rec.sample()
        assert s["t"] == clock.t
        assert s["counters"]["solver.points"] == 3

    def test_ring_buffer_caps_memory(self, rec, clock):
        for _ in range(25):
            rec.sample()
            clock.tick()
        assert rec.samples_taken == 25
        assert len(rec.window()["samples"]) == 10  # capacity

    def test_window_trims_to_trailing_seconds(self, rec, clock):
        for _ in range(6):
            rec.sample()
            clock.tick()
        w = rec.window(2.0)
        # newest sample at t+5; cutoff is t+3 -> three samples survive
        assert len(w["samples"]) == 3
        assert w["window_s"] == pytest.approx(2.0)

    def test_window_is_json_safe_shape(self, rec):
        w = rec.window()
        assert set(w) == {"interval_s", "capacity", "samples", "window_s"}
        assert w["samples"] == []
        assert w["window_s"] == 0.0


class TestDerivedViews:
    def test_series_tracks_counter_over_time(self, rec, reg, clock):
        c = reg.counter("solver.points")
        for n in (1, 2, 3):
            c.inc(n)
            rec.sample()
            clock.tick()
        pts = rec.series("solver.points")
        assert [v for _, v in pts] == [1.0, 3.0, 6.0]

    def test_series_reads_gauges_too(self, rec, reg):
        reg.gauge("serve.queue_depth").set(7)
        rec.sample()
        assert rec.series("serve.queue_depth") == [(pytest.approx(1000.0), 7.0)]

    def test_rate_is_delta_over_elapsed(self, rec, reg, clock):
        c = reg.counter("solver.points")
        rec.sample()
        clock.tick(4.0)
        c.inc(20)
        rec.sample()
        assert rec.rate("solver.points") == pytest.approx(5.0)

    def test_rate_needs_two_points(self, rec, reg):
        reg.counter("solver.points").inc()
        rec.sample()
        assert rec.rate("solver.points") == 0.0

    def test_quantiles_cover_only_the_window(self, rec, reg, clock):
        h = reg.histogram("solve.latency_s", buckets=(0.1, 0.2, 0.4, 0.8))
        h.observe(0.05)  # before the window of interest
        rec.sample()
        clock.tick()
        for _ in range(100):
            h.observe(0.3)
        rec.sample()
        qs = rec.quantiles("solve.latency_s", seconds=1.5)
        # windowed view is dominated by the 0.3s observations: p50 must
        # land inside their (0.2, 0.4] bucket, not near the early 0.05
        assert 0.2 < qs["p50"] <= 0.4

    def test_quantiles_unknown_histogram_is_empty(self, rec):
        rec.sample()
        assert rec.quantiles("no.such") == {}

    def test_summary_digest(self, rec, reg, clock):
        c = reg.counter("solver.points")
        g = reg.gauge("serve.queue_depth")
        h = reg.histogram("solve.latency_s", buckets=(0.1, 1.0))
        rec.sample()
        clock.tick(2.0)
        c.inc(10)
        g.set(3)
        h.observe(0.5)
        rec.sample()
        s = rec.summary()
        assert s["samples"] == 2
        assert s["window_s"] == pytest.approx(2.0)
        assert s["rates"]["solver.points"] == pytest.approx(5.0)
        assert s["gauges"]["serve.queue_depth"] == 3
        assert set(s["quantiles"]["solve.latency_s"]) == {"p50", "p95", "p99"}

    def test_summary_empty_recorder(self, rec):
        s = rec.summary()
        assert s["samples"] == 0 and s["rates"] == {}


class TestThread:
    def test_start_stop_samples_on_cadence(self, reg):
        rec = MetricsRecorder(interval_s=0.01, capacity=100, reg=reg)
        with rec:
            assert rec.running
            deadline = time.time() + 2.0
            while rec.samples_taken < 5 and time.time() < deadline:
                time.sleep(0.005)
        assert not rec.running
        assert rec.samples_taken >= 5  # immediate + ticks + final

    def test_start_is_idempotent(self, reg):
        rec = MetricsRecorder(interval_s=0.01, reg=reg)
        try:
            assert rec.start() is rec.start()
        finally:
            rec.stop()


class TestGlobals:
    def test_start_get_stop_cycle(self):
        assert get_recorder() is None
        rec = start_recorder(interval_s=0.05)
        try:
            assert get_recorder() is rec
            assert start_recorder() is rec  # idempotent while running
        finally:
            assert stop_recorder() is rec
        assert get_recorder() is None
        assert not rec.running
