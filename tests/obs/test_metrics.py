"""MetricsRegistry: instruments, snapshots, and run-scoped diffs."""

import numpy as np
import pytest

from repro.obs import MetricsRegistry, diff_snapshots
from repro.obs.metrics import Histogram, quantile_from_buckets


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        assert reg.snapshot()["counters"]["c"] == 5.0

    def test_gauge_set_and_high_water(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(3)
        reg.gauge("g").update_max(1)  # lower: ignored
        assert reg.snapshot()["gauges"]["g"] == 3.0
        reg.gauge("g").update_max(7)
        assert reg.snapshot()["gauges"]["g"] == 7.0

    def test_histogram_buckets(self):
        h = Histogram(buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0, 0.1):
            h.observe(v)
        assert h.counts == [2, 1, 1]  # <=1, <=10, +inf
        assert h.count == 4
        assert h.mean == pytest.approx(55.6 / 4)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_reset_drops_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestQuantile:
    """`Histogram.quantile` pinned against numpy on known distributions.

    The estimator interpolates linearly inside a bucket, so its error is
    bounded by the containing bucket's width -- the tolerances below are
    exactly that bound.
    """

    FINE = tuple(i / 100 for i in range(1, 101))  # 0.01 .. 1.00

    def _filled(self, values):
        h = Histogram(buckets=self.FINE)
        for v in values:
            h.observe(v)
        return h, np.asarray(values)

    @pytest.mark.parametrize("q", [0.5, 0.95, 0.99])
    def test_uniform_matches_numpy_within_bucket_width(self, q):
        rng = np.random.default_rng(42)
        h, values = self._filled(rng.uniform(0.0, 1.0, size=20_000))
        assert h.quantile(q) == pytest.approx(np.quantile(values, q), abs=0.01)

    @pytest.mark.parametrize("q", [0.5, 0.95, 0.99])
    def test_exponential_matches_numpy_within_bucket_width(self, q):
        rng = np.random.default_rng(7)
        values = np.minimum(rng.exponential(scale=0.15, size=20_000), 0.999)
        h, values = self._filled(values)
        assert h.quantile(q) == pytest.approx(np.quantile(values, q), abs=0.01)

    def test_single_bucket_interpolates_from_zero(self):
        h = Histogram(buckets=(1.0,))
        for _ in range(100):
            h.observe(0.5)
        # all mass in (0, 1]: the q-quantile interpolates to q * 1.0
        assert h.quantile(0.5) == pytest.approx(0.5)
        assert h.quantile(0.95) == pytest.approx(0.95)

    def test_overflow_bucket_clamps_to_last_bound(self):
        h = Histogram(buckets=(1.0, 10.0))
        for _ in range(10):
            h.observe(100.0)  # +inf bucket only
        assert h.quantile(0.5) == 10.0
        assert h.quantile(0.99) == 10.0

    def test_empty_histogram_returns_zero(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)
        with pytest.raises(ValueError):
            Histogram().quantile(-0.1)

    def test_helper_works_on_snapshot_dicts(self):
        # diff_snapshots output feeds the same estimator in the recorder
        reg = MetricsRegistry()
        for v in (0.2, 0.4, 0.6, 0.8):
            reg.histogram("h", buckets=self.FINE).observe(v)
        snap = reg.snapshot()["histograms"]["h"]
        est = quantile_from_buckets(snap["buckets"], snap["counts"], 0.5)
        # rank-based: 2 of 4 observations are <= 0.4, so the median bucket
        # is the one holding 0.4 (numpy's midpoint rule would say 0.5)
        assert est == pytest.approx(0.4, abs=0.01)


class TestDiffSnapshots:
    def test_counters_subtract_and_unmoved_dropped(self):
        reg = MetricsRegistry()
        reg.counter("moved").inc(2)
        reg.counter("still")
        before = reg.snapshot()
        reg.counter("moved").inc(3)
        delta = diff_snapshots(before, reg.snapshot())
        assert delta["counters"] == {"moved": 3.0}

    def test_gauges_keep_final_value(self):
        reg = MetricsRegistry()
        reg.gauge("level").set(1)
        before = reg.snapshot()
        reg.gauge("level").set(9)
        delta = diff_snapshots(before, reg.snapshot())
        assert delta["gauges"]["level"] == 9.0

    def test_histograms_subtract(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        before = reg.snapshot()
        reg.histogram("h", buckets=(1.0,)).observe(2.0)
        delta = diff_snapshots(before, reg.snapshot())
        assert delta["histograms"]["h"]["count"] == 1
        assert delta["histograms"]["h"]["counts"] == [0, 1]
        assert delta["histograms"]["h"]["sum"] == pytest.approx(2.0)

    def test_new_histogram_appears_whole(self):
        reg = MetricsRegistry()
        before = reg.snapshot()
        reg.histogram("fresh", buckets=(1.0,)).observe(0.1)
        delta = diff_snapshots(before, reg.snapshot())
        assert delta["histograms"]["fresh"]["count"] == 1
