"""MetricsRegistry: instruments, snapshots, and run-scoped diffs."""

import pytest

from repro.obs import MetricsRegistry, diff_snapshots
from repro.obs.metrics import Histogram


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        assert reg.snapshot()["counters"]["c"] == 5.0

    def test_gauge_set_and_high_water(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(3)
        reg.gauge("g").update_max(1)  # lower: ignored
        assert reg.snapshot()["gauges"]["g"] == 3.0
        reg.gauge("g").update_max(7)
        assert reg.snapshot()["gauges"]["g"] == 7.0

    def test_histogram_buckets(self):
        h = Histogram(buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0, 0.1):
            h.observe(v)
        assert h.counts == [2, 1, 1]  # <=1, <=10, +inf
        assert h.count == 4
        assert h.mean == pytest.approx(55.6 / 4)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_reset_drops_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestDiffSnapshots:
    def test_counters_subtract_and_unmoved_dropped(self):
        reg = MetricsRegistry()
        reg.counter("moved").inc(2)
        reg.counter("still")
        before = reg.snapshot()
        reg.counter("moved").inc(3)
        delta = diff_snapshots(before, reg.snapshot())
        assert delta["counters"] == {"moved": 3.0}

    def test_gauges_keep_final_value(self):
        reg = MetricsRegistry()
        reg.gauge("level").set(1)
        before = reg.snapshot()
        reg.gauge("level").set(9)
        delta = diff_snapshots(before, reg.snapshot())
        assert delta["gauges"]["level"] == 9.0

    def test_histograms_subtract(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        before = reg.snapshot()
        reg.histogram("h", buckets=(1.0,)).observe(2.0)
        delta = diff_snapshots(before, reg.snapshot())
        assert delta["histograms"]["h"]["count"] == 1
        assert delta["histograms"]["h"]["counts"] == [0, 1]
        assert delta["histograms"]["h"]["sum"] == pytest.approx(2.0)

    def test_new_histogram_appears_whole(self):
        reg = MetricsRegistry()
        before = reg.snapshot()
        reg.histogram("fresh", buckets=(1.0,)).observe(0.1)
        delta = diff_snapshots(before, reg.snapshot())
        assert delta["histograms"]["fresh"]["count"] == 1
