"""Attribution reports: self-time tables from traces and manifests."""

import json

import pytest

from repro.obs import render_report, trace_report
from repro.obs.report import _attribution_rows, manifest_report

META = {"kind": "meta", "schema": "repro-trace/1"}


def _span(span_id, parent, name, duration):
    return {
        "kind": "span",
        "trace_id": "t1",
        "span_id": span_id,
        "parent_id": parent,
        "name": name,
        "t_start": 0.0,
        "duration_s": duration,
        "attrs": {},
        "pid": 1,
    }


class TestAttribution:
    def test_self_time_subtracts_children(self):
        spans = [
            _span("root", None, "run", 1.0),
            _span("c1", "root", "solve", 0.7),
            _span("g1", "c1", "kernel", 0.4),
        ]
        rows, wall = _attribution_rows(spans)
        assert wall == pytest.approx(1.0)
        by = {r[0]: r for r in rows}
        assert by["run"][3] == pytest.approx(300.0)  # 1.0 - 0.7, in ms
        assert by["solve"][3] == pytest.approx(300.0)  # 0.7 - 0.4
        assert by["kernel"][3] == pytest.approx(400.0)
        # self times tile the root: the table never double-counts
        assert sum(r[3] for r in rows) == pytest.approx(1e3 * wall)

    def test_rows_sorted_by_self_time(self):
        spans = [
            _span("a", None, "small", 0.1),
            _span("b", None, "big", 0.9),
        ]
        rows, wall = _attribution_rows(spans)
        assert [r[0] for r in rows] == ["big", "small"]
        assert wall == pytest.approx(1.0)  # two roots both count

    def test_trace_report_renders_metrics_block(self):
        events = [
            META,
            _span("a", None, "run", 0.5),
            {"kind": "metrics", "metrics": {"counters": {"store.hits": 3.0}}},
        ]
        text = trace_report(events)
        assert "Time attribution" in text
        assert "store.hits" in text

    def test_station_table_from_sim_spans(self):
        sim = _span("s", None, "sim.run", 0.2)
        sim["attrs"] = {
            "events": 100,
            "stations": {"memory": {"busy_frac": 0.5, "occupancy": 1.5}},
        }
        text = trace_report([META, sim])
        assert "Simulator stations" in text and "memory" in text


class TestManifestReport:
    def _manifest(self):
        return {
            "wall_clock_s": 0.1,
            "mode": "batch",
            "unique_points": 4,
            "stages": {"solve": 0.08, "cache_lookup": 0.02},
            "solver_batches": [
                {
                    "method": "symmetric",
                    "batch_size": 4,
                    "iterations": 12,
                    "wall_time_s": 0.07,
                    "masked_iterations_saved": 5,
                }
            ],
            "store": {"hits": 0, "misses": 4, "hit_rate": 0.0, "entries": 4},
            "metrics": {"counters": {"solver.points": 4.0}},
        }

    def test_renders_all_blocks(self):
        text = manifest_report(self._manifest())
        assert "Sweep stages" in text
        assert "Batched solver calls" in text
        assert "Result store" in text
        assert "solver.points" in text

    def test_batch_wall_counted_once_not_point_latency(self):
        """The batch table reports the true batch wall clock; amortized
        per-point shares never appear as an extra time column."""
        text = manifest_report(self._manifest())
        assert "counted once" in text
        assert "70.000" in text  # 0.07 s -> ms

    def test_manifest_without_stages(self):
        assert "no stage timings" in manifest_report({"wall_clock_s": 0.1})


class TestRenderDispatch:
    def test_json_manifest_file(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"wall_clock_s": 0.1, "stages": {"solve": 0.1}}))
        assert "Sweep stages" in render_report(path)

    def test_jsonl_trace_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        lines = [META, _span("a", None, "run", 0.5)]
        path.write_text("\n".join(json.dumps(x) for x in lines) + "\n")
        assert "Time attribution" in render_report(path)


class TestFabricManifestReport:
    """Regression: ``repro-mms report`` on a real fabric manifest."""

    @pytest.fixture(scope="class")
    def fabric_manifest(self, tmp_path_factory):
        from repro.fabric import FabricScheduler
        from repro.params import paper_defaults
        from repro.runner import JobSpec

        specs = [
            JobSpec(params=paper_defaults(num_threads=nt, p_remote=0.2))
            for nt in (2, 4)
        ]
        fabric_dir = tmp_path_factory.mktemp("fabric")
        with FabricScheduler(fabric_dir, poll_s=0.05) as scheduler:
            report = scheduler.run(specs, workers=1, timeout=180)
        assert report.ok
        return report.manifest.to_dict()

    def test_kernel_in_stage_title(self, fabric_manifest):
        text = manifest_report(fabric_manifest)
        assert f"kernel={fabric_manifest['kernel']}" in text
        assert "mode=fabric" in text

    def test_fabric_dispatch_block(self, fabric_manifest):
        text = manifest_report(fabric_manifest)
        assert "Fabric dispatch (experiment " in text
        assert fabric_manifest["fabric"]["experiment_id"] in text

    def test_fleet_table_lists_each_worker(self, fabric_manifest):
        text = manifest_report(fabric_manifest)
        assert "Fleet (heartbeat gap" in text
        for wid in fabric_manifest["fabric"]["fleet"]["workers"]:
            assert wid in text
        assert "Lease latency: n=" in text

    def test_render_report_end_to_end(self, fabric_manifest, tmp_path):
        path = tmp_path / "fabric-manifest.json"
        path.write_text(json.dumps(fabric_manifest))
        text = render_report(path)
        assert "Fabric dispatch" in text

    def test_series_digest_renders_when_present(self):
        manifest = {
            "wall_clock_s": 1.0,
            "stages": {"solve": 1.0},
            "series": {
                "samples": 3,
                "window_s": 2.0,
                "interval_s": 1.0,
                "rates": {"solver.points": 8.0},
                "gauges": {},
                "quantiles": {"solve.latency_s": {"p50": 0.2}},
            },
        }
        text = manifest_report(manifest)
        assert "Recorder series (3 samples over 2.0 s)" in text
        assert "solver.points" in text
        assert "p50=0.2" in text
