"""Docs/kernel drift pins: the written story must match the registry.

The kernel selection surface is documented in three places -- the
``repro.configure`` table in docs/API.md, the backend/kernel section of the
README, and THEORY.md §8 -- and the degradation chain (now including the
``shm`` handoff) in docs/RESILIENCE.md.  These tests parse the actual
registry constants back out of the prose so renaming a kernel, adding one,
or reordering the chain fails loudly here instead of silently rotting the
docs.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.queueing import kernels
from repro.queueing.kernels import KERNELS
from repro.resilience.degrade import DEGRADATION_CHAIN

ROOT = Path(__file__).resolve().parent.parent
API = ROOT / "docs" / "API.md"
README = ROOT / "README.md"
THEORY = ROOT / "docs" / "THEORY.md"
RESILIENCE = ROOT / "docs" / "RESILIENCE.md"


class TestApiTable:
    def test_kernel_row_present_with_env_var(self):
        text = API.read_text(encoding="utf-8")
        row = next(
            (
                line
                for line in text.splitlines()
                if line.startswith("| `kernel` |")
            ),
            None,
        )
        assert row is not None, "docs/API.md lost the `kernel` configure row"
        assert "`REPRO_SOLVE_KERNEL`" in row
        for name in KERNELS:
            assert f"`{name}`" in row, f"kernel {name!r} missing from the row"

    def test_env_var_matches_registry(self):
        # the module-private constant is the single source of the env name
        assert kernels._ENV_VAR == "REPRO_SOLVE_KERNEL"
        assert "REPRO_SOLVE_KERNEL" in API.read_text(encoding="utf-8")


class TestReadme:
    def test_kernel_selection_documented(self):
        text = README.read_text(encoding="utf-8")
        assert "`--kernel`" in text
        assert "REPRO_SOLVE_KERNEL" in text
        for name in KERNELS:
            assert f"`{name}`" in text

    def test_conformance_suite_referenced(self):
        assert (
            "tests/queueing/test_kernel_conformance.py"
            in README.read_text(encoding="utf-8")
        )
        assert (ROOT / "tests/queueing/test_kernel_conformance.py").is_file()

    def test_degradation_chain_in_readme_matches_policy(self):
        text = README.read_text(encoding="utf-8")
        chain = "`" + " → ".join(DEGRADATION_CHAIN) + "`"
        assert chain in text, f"README chain mention != {DEGRADATION_CHAIN}"


class TestTheory:
    def test_section8_names_real_modules(self):
        text = THEORY.read_text(encoding="utf-8")
        assert "repro.queueing.kernels" in text
        for mod in ("soa", "reference", "compiled", "shm"):
            assert (
                ROOT / "src" / "repro" / "queueing" / "kernels" / f"{mod}.py"
            ).is_file()
        assert "kernels.reference" in text and "kernels.compiled" in text
        assert "kernels.shm" in text

    def test_precedence_statement_present(self):
        text = THEORY.read_text(encoding="utf-8")
        assert re.search(
            r"REPRO_SOLVE_KERNEL.*?<.*?configure\(kernel=.*?<.*?kernel=",
            text,
            re.DOTALL,
        ), "THEORY.md lost the kernel-selection precedence statement"


class TestResilienceChain:
    def test_chain_prose_matches_policy(self):
        text = RESILIENCE.read_text(encoding="utf-8")
        chain = "`" + " → ".join(DEGRADATION_CHAIN) + "`"
        assert chain in text, (
            f"docs/RESILIENCE.md chain mention != {DEGRADATION_CHAIN}"
        )
