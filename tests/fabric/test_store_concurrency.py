"""Multi-writer torture of the result store's ``O_APPEND`` append path.

Satellite of the fabric PR: every ``ResultStore.put`` must be a single
``os.write`` of one complete line, so two real processes hammering the
same ``results.jsonl`` concurrently can never interleave bytes mid-record.
The torture test runs two writer subprocesses flat out -- disjoint keys
plus a contended overlap range both write with different payloads -- then
reopens the store exclusively and asserts nothing tore, nothing was lost,
and the overlap deduplicated to exactly one surviving record per key.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.runner.store import ResultStore, StoreLockError

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

WRITER = """
import sys
from repro.runner.store import ResultStore

store_dir, name, count, overlap = sys.argv[1:5]
count, overlap = int(count), int(overlap)
store = ResultStore(store_dir, shared=True)
for i in range(count):
    store.put(f"{name}-{i:04d}", {"writer": name, "i": i})
for i in range(overlap):
    store.put(f"shared-{i:04d}", {"writer": name, "i": i})
store.close()
"""


def _spawn_writer(store_dir, name: str, count: int, overlap: int) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    return subprocess.Popen(
        [sys.executable, "-c", WRITER, str(store_dir), name, str(count), str(overlap)],
        env=env,
        cwd=REPO,
    )


class TestSharedAppend:
    @pytest.mark.slow
    def test_two_process_torture(self, tmp_path):
        count, overlap = 400, 100
        writers = [
            _spawn_writer(tmp_path, "alpha", count, overlap),
            _spawn_writer(tmp_path, "beta", count, overlap),
        ]
        for proc in writers:
            assert proc.wait(timeout=120) == 0

        # every line in the raw file is complete, parseable JSON
        lines = (tmp_path / "results.jsonl").read_bytes().splitlines()
        assert len(lines) == 2 * count + 2 * overlap
        keys_seen = [json.loads(line)["key"] for line in lines]

        # exclusive reopen: recovery scan verifies + dedups + rebuilds index
        store = ResultStore(tmp_path)
        assert store.quarantined == 0
        assert len(store) == 2 * count + overlap
        for name in ("alpha", "beta"):
            for i in range(count):
                rec = store.get(f"{name}-{i:04d}")
                assert rec == {
                    "key": f"{name}-{i:04d}",
                    "solver_version": store.solver_version,
                    "writer": name,
                    "i": i,
                }
        # the contended range kept exactly one record per key -- whichever
        # writer's append landed first in the file
        for i in range(overlap):
            key = f"shared-{i:04d}"
            rec = store.get(key)
            first = next(k for k in keys_seen if k == key)
            assert first == key
            assert rec["writer"] in ("alpha", "beta")
            winner = next(
                json.loads(line)
                for line in lines
                if json.loads(line)["key"] == key
            )
            assert rec["writer"] == winner["writer"]
        store.close()

    def test_shared_mode_never_touches_the_index(self, tmp_path):
        store = ResultStore(tmp_path, shared=True)
        store.put("k1", {"v": 1})
        store.flush()
        store.close()
        assert not (tmp_path / "index.json").exists()

    def test_recovery_scan_refuses_while_a_shared_writer_holds_the_store(
        self, tmp_path
    ):
        """Compaction must never replace the JSONL under a live appender.

        A shared handle holds the store's shared ``flock`` for its whole
        lifetime; an exclusive open that needs a recovery scan (no index
        yet) must fail with :class:`StoreLockError` instead of compacting
        the file out from under the appender's ``O_APPEND`` fd.
        """
        shared = ResultStore(tmp_path, shared=True)
        shared.put("k-0", {"v": 0})
        with pytest.raises(StoreLockError):
            ResultStore(tmp_path, lock_timeout_s=0.2)
        # the appender keeps working: its fd still points at the live file
        shared.put("k-1", {"v": 1})
        shared.close()
        # once released, the exclusive open scans, dedups and indexes
        store = ResultStore(tmp_path, lock_timeout_s=0.2)
        assert len(store) == 2
        assert store.get("k-1")["v"] == 1
        store.close()

    def test_exclusive_open_with_valid_index_coexists_with_shared_writers(
        self, tmp_path
    ):
        """No recovery scan -> no exclusive lock -> appenders are untouched."""
        seed = ResultStore(tmp_path)
        seed.put("seed", {"v": 0})
        seed.close()  # writes a size-accurate index
        shared = ResultStore(tmp_path, shared=True)
        exclusive = ResultStore(tmp_path, lock_timeout_s=0.2)
        assert exclusive.get("seed")["v"] == 0
        shared.put("later", {"v": 1})
        shared.close()
        exclusive.close()

    def test_exclusive_offsets_stay_correct_across_foreign_appends(self, tmp_path):
        """An exclusive writer's own offsets survive another process appending."""
        mine = ResultStore(tmp_path)
        mine.put("mine-0", {"v": 0})
        proc = _spawn_writer(tmp_path, "other", 5, 0)
        assert proc.wait(timeout=60) == 0
        mine.put("mine-1", {"v": 1})
        assert mine.get("mine-0") == {
            "key": "mine-0",
            "solver_version": mine.solver_version,
            "v": 0,
        }
        assert mine.get("mine-1")["v"] == 1
        mine.close()
        # a fresh exclusive open sees everything both processes wrote
        merged = ResultStore(tmp_path)
        assert len(merged) == 7
        assert merged.get("other-0003")["writer"] == "other"
        merged.close()
