"""End-to-end fabric runs: bitwise parity with single-host sweeps.

The contract under test is the PR's acceptance bar: a sweep distributed
across fabric workers -- including workers SIGKILLed mid-lease and
replaced -- produces per-point records **bitwise identical** to an
uninterrupted in-process :class:`~repro.runner.SweepRunner` run, with
every trial terminal, no lost points, and no duplicate records surviving
finalize.  The lattice is ``num_threads x p_remote`` over the paper's
default machine, which resolves to the symmetric solver -- the family the
chaos suite already proves bitwise-stable across every backend.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.fabric import ExperimentDB, FabricError, FabricScheduler, FabricWorker
from repro.resilience import faults
from repro.params import paper_defaults
from repro.runner import JobSpec, ResultStore, SweepRunner, canonical_json

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _specs() -> list[JobSpec]:
    return [
        JobSpec(params=paper_defaults(num_threads=nt, p_remote=pr))
        for nt in (1, 2, 3, 4, 5, 6, 7, 8)
        for pr in (0.2, 0.4)
    ]


def _record_lines(report) -> list[str]:
    return [canonical_json(rec) for rec in report.records()]


@pytest.fixture(scope="module")
def golden_lines() -> list[str]:
    return _record_lines(SweepRunner(jobs=1).run(_specs()))


def _worker_env(fault_plan: dict | None = None) -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    for var in ("REPRO_FAULT_PLAN", "REPRO_TRACE", "REPRO_CACHE_DIR"):
        env.pop(var, None)
    if fault_plan is not None:
        env["REPRO_FAULT_PLAN"] = json.dumps(fault_plan)
    return env


def _spawn_cli_worker(
    fabric_dir, experiment_id: str, *extra: str, fault_plan: dict | None = None
) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--fabric", str(fabric_dir),
            "--experiment", experiment_id,
            "--backend", "serial",
            *extra,
        ],
        env=_worker_env(fault_plan),
        cwd=REPO,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _store_keys(fabric_dir) -> list[str]:
    path = fabric_dir / "store" / "results.jsonl"
    return [json.loads(line)["key"] for line in path.read_bytes().splitlines()]


class TestManagedRun:
    def test_fabric_run_is_bitwise_identical_to_single_host(
        self, tmp_path, golden_lines
    ):
        with FabricScheduler(tmp_path, poll_s=0.05) as scheduler:
            report = scheduler.run(_specs(), workers=2, timeout=180)
        assert _record_lines(report) == golden_lines
        manifest = report.manifest
        assert manifest.mode == "fabric"
        assert manifest.solved == 16
        assert manifest.failures == 0
        assert set(manifest.stages) == {"schedule", "dispatch", "finalize"}
        assert manifest.fabric["trials"] == {
            "pending": 0, "leased": 0, "done": 16, "failed": 0,
            "quarantined": 0,
        }
        assert manifest.fabric["workers"] == 2
        # the store holds exactly one record per point after finalize
        assert sorted(_store_keys(tmp_path)) == sorted(
            json.loads(line)["key"] for line in golden_lines
        )

    def test_rerun_resumes_without_dispatching(self, tmp_path, golden_lines):
        with FabricScheduler(tmp_path, poll_s=0.05) as scheduler:
            scheduler.run(_specs(), workers=1, timeout=180)
        with FabricScheduler(tmp_path, poll_s=0.05) as scheduler:
            report = scheduler.run(_specs(), workers=1, timeout=180)
        assert _record_lines(report) == golden_lines
        assert report.manifest.cache_hits == 16
        assert report.manifest.solved == 0
        # no worker was spawned for the resumed run
        assert report.manifest.fabric["leases_granted"] == 1

    def test_progress_fires_per_unique_point(self, tmp_path):
        seen: list[tuple[int, int]] = []
        with FabricScheduler(tmp_path, poll_s=0.05) as scheduler:
            scheduler.run(
                _specs(),
                workers=1,
                timeout=180,
                progress=lambda done, total, result: seen.append((done, total)),
            )
        assert seen[0] == (1, 16)
        assert seen[-1] == (16, 16)
        assert len(seen) == 16


class TestInProcessWorker:
    def test_worker_drains_a_submitted_experiment(self, tmp_path, golden_lines):
        specs = _specs()
        with FabricScheduler(tmp_path, lease_points=4, poll_s=0.05) as scheduler:
            experiment_id, _ = scheduler.submit(specs)
            stats = FabricWorker(
                tmp_path, experiment_id=experiment_id, lease_points=4, poll_s=0.05
            ).run()
            assert stats.points == 16
            assert stats.solved == 16
            assert stats.leases == 4
            report = scheduler.finalize(experiment_id, specs)
            scheduler.db.close()
        assert [canonical_json(r.record()) for r in report.results] == golden_lines

    def test_duplicate_specs_share_one_trial(self, tmp_path):
        specs = _specs()[:2] * 3
        with FabricScheduler(tmp_path, poll_s=0.05) as scheduler:
            report = scheduler.run(specs, workers=1, timeout=180)
        assert report.manifest.total_points == 6
        assert report.manifest.unique_points == 2
        assert len(report.results) == 6
        assert sum(1 for r in report.results if not r.from_cache) == 2


@pytest.mark.slow
class TestKilledWorker:
    def test_sigkilled_worker_lease_is_redispatched_exactly_once(
        self, tmp_path, golden_lines
    ):
        """Satellite acceptance: heartbeat-then-die -> re-run exactly once.

        A paced worker solves its first lease, claims a second, and is
        SIGKILLed holding it.  Its lease expires; a clean worker re-runs
        only the lost points.  No point is lost, none is served twice,
        and the records match the single-host golden byte for byte.
        """
        specs = _specs()
        scheduler = FabricScheduler(
            tmp_path, lease_ttl=2.0, lease_points=4, poll_s=0.05, backend="serial"
        )
        experiment_id, _ = scheduler.submit(specs)

        victim = _spawn_cli_worker(
            tmp_path,
            experiment_id,
            "--lease-points", "4",
            "--lease-ttl", "2.0",
            fault_plan={"sites": {"solve.delay": {"p": 1.0, "sleep_s": 0.15}}},
        )
        try:
            deadline = time.monotonic() + 90
            while True:
                counts = scheduler.db.counts(experiment_id)
                # first lease reported, second lease in flight: kill now
                if counts["done"] >= 4 and counts["leased"] >= 1:
                    break
                if victim.poll() is not None:
                    pytest.fail("victim worker finished before it could be killed")
                if time.monotonic() > deadline:
                    pytest.fail(f"never reached a killable state: {counts}")
                time.sleep(0.02)
            os.kill(victim.pid, signal.SIGKILL)
            victim.wait(timeout=30)
        finally:
            if victim.poll() is None:
                victim.kill()
        assert victim.returncode == -signal.SIGKILL
        killed_counts = scheduler.db.counts(experiment_id)
        assert killed_counts["leased"] >= 1  # died holding a lease

        rescuer = _spawn_cli_worker(tmp_path, experiment_id, "--poll", "0.05")
        try:
            final_counts = scheduler.wait(experiment_id, timeout=120)
            assert rescuer.wait(timeout=60) == 0
        finally:
            if rescuer.poll() is None:
                rescuer.kill()

        assert final_counts == {
            "pending": 0, "leased": 0, "done": 16, "failed": 0, "quarantined": 0
        }
        report = scheduler.finalize(experiment_id, specs)

        # bitwise parity with the uninterrupted single-host run
        assert _record_lines(report) == golden_lines

        stats = scheduler.db.stats(experiment_id)
        assert stats["leases_expired"] >= 1
        assert stats["redispatched_trials"] >= 1
        # exactly once: a re-dispatched trial was claimed twice, never more
        assert stats["max_attempts"] == 2
        redispatched = [
            t for t in scheduler.db.trials(experiment_id) if t["attempts"] == 2
        ]
        assert len(redispatched) == stats["redispatched_trials"]
        assert all(t["status"] == "done" for t in redispatched)

        # the finalized store holds every point exactly once -- the dedup of
        # any double-solve happened at the exclusive reopen
        keys = _store_keys(tmp_path)
        assert len(keys) == len(set(keys)) == 16
        scheduler.close()

    def test_heartbeat_keeps_slow_lease_alive_past_ttl(self, tmp_path):
        """Regression: the heartbeat DB connection must live on its thread.

        A lease whose solve outlasts ``lease_ttl`` survives on heartbeats
        alone.  The worker runs in a thread while the main thread plays
        the scheduler's reaper at full cadence; if heartbeats were broken
        (e.g. a cross-thread sqlite connection raising under a swallowed
        except), every lease would expire mid-solve and re-dispatch --
        here none may expire and no trial may run twice.
        """
        specs = _specs()[:8]
        lease_ttl = 0.8  # each 4-point lease takes ~1.0s of injected delay
        prev = faults.configure(
            fault_plan={"sites": {"solve.delay": {"p": 1.0, "sleep_s": 0.25}}}
        )
        scheduler = FabricScheduler(
            tmp_path, lease_ttl=lease_ttl, lease_points=4, poll_s=0.02,
            backend="serial",
        )
        try:
            experiment_id, _ = scheduler.submit(specs)
            worker = FabricWorker(
                tmp_path, experiment_id=experiment_id, lease_points=4,
                lease_ttl=lease_ttl, poll_s=0.02, backend="serial",
            )
            out: dict[str, object] = {}
            thread = threading.Thread(
                target=lambda: out.update(stats=worker.run())
            )
            thread.start()
            try:
                counts = scheduler.wait(experiment_id, timeout=120)
            finally:
                thread.join(timeout=120)
            assert not thread.is_alive()
            stats = scheduler.db.stats(experiment_id)
        finally:
            faults.configure(**prev)
            scheduler.close()
        assert counts == {
            "pending": 0, "leased": 0, "done": 8, "failed": 0, "quarantined": 0
        }
        assert out["stats"].points == 8
        assert stats["leases_expired"] == 0
        assert stats["redispatched_trials"] == 0
        assert stats["max_attempts"] == 1

    def test_expired_lease_is_reaped_by_surviving_workers_claim(self, tmp_path):
        """No scheduler needed: a worker's own claim() reaps dead leases."""
        specs = _specs()[:4]
        scheduler = FabricScheduler(tmp_path, lease_points=2, poll_s=0.05)
        experiment_id, _ = scheduler.submit(specs)
        db = ExperimentDB(tmp_path)
        # a phantom worker claims two points and vanishes (ttl already over)
        lease_id, _ = db.claim(experiment_id, "phantom", limit=2, ttl_s=-1.0)
        assert lease_id is not None
        stats = FabricWorker(
            tmp_path, experiment_id=experiment_id, lease_points=2, poll_s=0.05
        ).run()
        assert stats.points == 4  # including the phantom's re-dispatched two
        assert db.counts(experiment_id)["done"] == 4
        db.close()
        scheduler.close()


class TestStoreLockEnforcement:
    """Exclusive store phases must never compact under live appenders."""

    def test_finalize_refuses_while_a_worker_holds_the_store(self, tmp_path):
        specs = _specs()[:2]
        with FabricScheduler(
            tmp_path, poll_s=0.05, lock_timeout_s=0.3
        ) as scheduler:
            experiment_id, _ = scheduler.submit(specs)
            FabricWorker(
                tmp_path, experiment_id=experiment_id, poll_s=0.05
            ).run()
            holder = ResultStore(tmp_path / "store", shared=True)
            try:
                with pytest.raises(FabricError, match="shared store"):
                    scheduler.finalize(experiment_id, specs)
            finally:
                holder.close()
            # with the appender gone, the same finalize succeeds
            report = scheduler.finalize(experiment_id, specs)
            scheduler.db.close()
        assert all(r.ok for r in report.results)

    def test_submit_probe_is_skipped_under_live_appenders(self, tmp_path):
        """A held store degrades the probe to a no-op, never a compaction."""
        specs = _specs()[:4]
        with FabricScheduler(tmp_path, poll_s=0.05) as scheduler:
            scheduler.run(specs, workers=1, timeout=180)
        # fresh experiment DB, warm store: submit would normally probe
        for stale in tmp_path.glob("fabric.db*"):
            stale.unlink()
        # a stale index (workers appended since it was written) forces the
        # probe's open through the recovery scan -- the dangerous path
        (tmp_path / "store" / "index.json").unlink()
        holder = ResultStore(tmp_path / "store", shared=True)
        try:
            with FabricScheduler(
                tmp_path, poll_s=0.05, lock_timeout_s=0.3
            ) as scheduler:
                experiment_id, _ = scheduler.submit(specs)
                # probe skipped: nothing served from cache, nothing lost
                assert scheduler.db.counts(experiment_id)["pending"] == 4
        finally:
            holder.close()
        # once the appender is gone the probe marks every point from cache
        for stale in tmp_path.glob("fabric.db*"):
            stale.unlink()
        with FabricScheduler(tmp_path, poll_s=0.05) as scheduler:
            experiment_id, _ = scheduler.submit(specs)
            counts = scheduler.db.counts(experiment_id)
            assert counts["done"] == 4
            assert counts["pending"] == 0
