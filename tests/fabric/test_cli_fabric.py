"""CLI surface of the fabric: ``sweep --fabric``, ``worker``, ``exp``.

Exercises the commands as real subprocesses (the same way multi-host
operators run them) plus the cheap error paths in-process through
``repro.cli.main``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

from repro.cli import main

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

SWEEP = [
    "sweep",
    "--axis", "num_threads=1,2,4,8",
    "--axis", "p_remote=0.2,0.4",
]


def _env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    for var in ("REPRO_FAULT_PLAN", "REPRO_TRACE", "REPRO_CACHE_DIR"):
        env.pop(var, None)
    return env


def _run_cli(args, timeout=300):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=_env(), cwd=REPO, capture_output=True, text=True, timeout=timeout,
    )


class TestSweepFabric:
    def test_fabric_sweep_matches_single_host_records(self, tmp_path):
        golden = tmp_path / "golden.jsonl"
        out = _run_cli(SWEEP + ["--out", str(golden)])
        assert out.returncode == 0, out.stderr

        fabric_out = tmp_path / "fabric.jsonl"
        manifest = tmp_path / "manifest.json"
        out = _run_cli(
            SWEEP
            + [
                "--fabric", str(tmp_path / "fab"),
                "--workers", "2",
                "--out", str(fabric_out),
                "--manifest", str(manifest),
            ]
        )
        assert out.returncode == 0, out.stderr
        assert "[fabric]" in out.stdout
        assert fabric_out.read_bytes() == golden.read_bytes()
        data = json.loads(manifest.read_text())
        assert data["mode"] == "fabric"
        assert data["fabric"]["trials"]["done"] == 8
        assert data["failures"] == 0

    def test_fabric_rejects_journal_and_cache_dir(self, tmp_path, capsys):
        base = SWEEP + ["--fabric", str(tmp_path / "fab")]
        assert main(base + ["--journal", str(tmp_path / "j")]) == 2
        assert "experiment database" in capsys.readouterr().err
        assert main(base + ["--cache-dir", str(tmp_path / "c")]) == 2
        assert "FABRIC/store" in capsys.readouterr().err
        assert main(base + ["--workers", "-1"]) == 2
        assert "--workers" in capsys.readouterr().err


class TestWorkerCommand:
    def test_worker_on_a_drained_experiment_exits_clean(self, tmp_path, capsys):
        fabric = tmp_path / "fab"
        out = _run_cli(SWEEP + ["--fabric", str(fabric), "--workers", "1"])
        assert out.returncode == 0, out.stderr
        with open(fabric / "fabric.db", "rb"):
            pass  # the DB exists and is a file
        # the experiment is terminal; a worker pointed at it has nothing to do
        exp_id = None
        for line in out.stdout.splitlines():
            if "[fabric]" in line:
                exp_id = line.split("experiment=")[1].split()[0]
        assert exp_id is not None
        assert main(["worker", "--fabric", str(fabric), "--experiment", exp_id]) == 0
        captured = capsys.readouterr().out
        assert "[worker]" in captured
        assert "leases=0" in captured

    def test_worker_times_out_waiting_for_an_experiment(self, tmp_path, capsys):
        code = main(["worker", "--fabric", str(tmp_path), "--wait", "0.2"])
        assert code == 2
        assert "no running experiment" in capsys.readouterr().err

    def test_worker_rejects_bad_lease_points(self, tmp_path, capsys):
        code = main(
            ["worker", "--fabric", str(tmp_path), "--lease-points", "0"]
        )
        assert code == 2
        assert "lease_points" in capsys.readouterr().err


class TestExpCommands:
    def test_list_show_trials(self, tmp_path, capsys):
        fabric = tmp_path / "fab"
        out = _run_cli(SWEEP + ["--fabric", str(fabric), "--workers", "1"])
        assert out.returncode == 0, out.stderr

        assert main(["exp", "list", "--fabric", str(fabric)]) == 0
        listing = capsys.readouterr().out
        assert "done" in listing
        assert "8/8 trials" in listing

        assert main(["exp", "show", "--fabric", str(fabric)]) == 0
        shown = capsys.readouterr().out
        assert "status          done" in shown
        assert "done=8" in shown
        assert "workers         1" in shown

        assert main(["exp", "trials", "--fabric", str(fabric)]) == 0
        trials = capsys.readouterr().out
        assert "[8 trials]" in trials
        assert trials.count(" done ") == 8

        assert (
            main(["exp", "trials", "--fabric", str(fabric), "--status", "failed"])
            == 0
        )
        assert "[0 trials]" in capsys.readouterr().out

    def test_empty_fabric(self, tmp_path, capsys):
        assert main(["exp", "list", "--fabric", str(tmp_path)]) == 0
        assert "no experiments" in capsys.readouterr().out
        assert main(["exp", "show", "--fabric", str(tmp_path)]) == 2
        assert "no experiments" in capsys.readouterr().err
