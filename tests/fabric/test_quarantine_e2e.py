"""Poison-trial quarantine: the fleet survives a trial that cannot succeed.

The acceptance bar (ISSUE 9): a poisoned 512-point fabric sweep -- one
trial whose every attempt crashes -- completes the other 511 points
**bitwise identical** to a clean run, with exactly one ``quarantined``
trial recorded (last traceback attached) once the retry budget is spent
across two distinct workers.  The poison needs no fault injection: a
:class:`~repro.runner.JobSpec` that pins ``method="symmetric"`` onto an
asymmetric (hotspot) point makes the solver raise deterministically on
every worker, every attempt -- the honest worker-killer.

The slow companion proves the quarantine verdict also lands through the
*reaper* path (a worker SIGKILLed while holding the poison leaves no
traceback, only an expired lease) and that both the v1 -> v2 schema
migration and the quarantined state survive a resume.
"""

from __future__ import annotations

import json
import os
import signal
import sqlite3
import time

import pytest

from repro.fabric import DB_SCHEMA_VERSION, ExperimentDB, FabricScheduler, FabricWorker
from repro.params import paper_defaults
from repro.runner import JobSpec, SweepRunner, canonical_json

from .test_db import _V1_SCHEMA
from .test_fabric_e2e import _spawn_cli_worker


def _good_specs(n: int) -> list[JobSpec]:
    """``n`` distinct symmetric points over the paper's default machine."""
    points = [
        (nt, round(0.05 + 0.01 * i, 4))
        for nt in (1, 2, 3, 4, 5, 6, 7, 8)
        for i in range(64)
    ]
    return [
        JobSpec(params=paper_defaults(num_threads=nt, p_remote=pr))
        for nt, pr in points[:n]
    ]


def _poison_spec() -> JobSpec:
    """A spec that crashes every solve attempt on every worker: the
    symmetric kernel refuses the asymmetric hotspot pattern."""
    return JobSpec(
        params=paper_defaults(pattern="hotspot", p_remote=0.2),
        method="symmetric",
    )


def _golden_lines(specs: list[JobSpec]) -> list[str]:
    report = SweepRunner(jobs=1, backend="serial").run(specs)
    return [canonical_json(rec) for rec in report.records()]


def _ok_lines(report) -> list[str]:
    return [canonical_json(r.record()) for r in report.results if r.ok]


class TestPoisonedSweep:
    def test_512_point_sweep_quarantines_the_poison_and_completes_the_rest(
        self, tmp_path
    ):
        good = _good_specs(511)
        poison = _poison_spec()
        specs = good[:256] + [poison] + good[256:]  # buried mid-sweep
        with FabricScheduler(
            tmp_path, poll_s=0.05, backend="serial", max_attempts=2
        ) as scheduler:
            experiment_id, created = scheduler.submit(specs)
            assert created

            # worker A claims every trial in one giant lease: 511 solves
            # plus the poison's first failed attempt (requeued -- budget
            # remains)
            stats_a = FabricWorker(
                tmp_path,
                experiment_id=experiment_id,
                worker_id="worker-a",
                lease_points=600,
                max_leases=1,
                backend="serial",
                poll_s=0.05,
            ).run()
            assert stats_a.solved == 511 and stats_a.failed == 1
            counts = scheduler.db.counts(experiment_id)
            assert counts == {
                "pending": 1, "leased": 0, "done": 511,
                "failed": 0, "quarantined": 0,
            }

            # worker B re-attempts it; the budget is now spent across two
            # distinct workers -> quarantined, and the experiment drains
            # without it
            stats_b = FabricWorker(
                tmp_path,
                experiment_id=experiment_id,
                worker_id="worker-b",
                lease_points=600,
                backend="serial",
                poll_s=0.05,
            ).run()
            assert stats_b.solved == 0 and stats_b.failed == 1
            counts = scheduler.db.counts(experiment_id)
            assert counts == {
                "pending": 0, "leased": 0, "done": 511,
                "failed": 0, "quarantined": 1,
            }

            # exactly one quarantined trial, carrying the last traceback
            # and the two-worker attempt history that justified the verdict
            (row,) = scheduler.db.quarantined(experiment_id)
            assert row["key"] == poison.key()
            assert row["attempts"] == 2
            assert "SPMD symmetry" in row["error"]
            assert set(json.loads(row["attempt_workers"])) == {
                "worker-a", "worker-b",
            }

            report = scheduler.finalize(experiment_id, specs)
            assert (
                scheduler.db.experiment(experiment_id)["status"] == "failed"
            )

        # the 511 non-poisoned points are bitwise identical to a clean
        # single-host run of the same specs
        assert _ok_lines(report) == _golden_lines(good)
        failures = [r for r in report.results if not r.ok]
        assert len(failures) == 1
        assert failures[0].key == poison.key()
        assert "quarantined after 2 attempts" in failures[0].error

    def test_quarantine_retry_reopens_and_respects_a_fresh_budget(
        self, tmp_path
    ):
        """``retry_quarantined`` resets the budget; a still-poisoned trial
        is re-quarantined once two workers have re-attempted it."""
        specs = _good_specs(4) + [_poison_spec()]
        with FabricScheduler(
            tmp_path, poll_s=0.05, backend="serial", max_attempts=2
        ) as scheduler:
            experiment_id, _ = scheduler.submit(specs)
            for worker_id in ("worker-a", "worker-b"):
                FabricWorker(
                    tmp_path,
                    experiment_id=experiment_id,
                    worker_id=worker_id,
                    lease_points=8,
                    max_leases=1,
                    backend="serial",
                    poll_s=0.05,
                ).run()
            scheduler.finalize(experiment_id, specs)
            assert scheduler.db.counts(experiment_id)["quarantined"] == 1

            assert scheduler.db.retry_quarantined(experiment_id) == 1
            assert (
                scheduler.db.experiment(experiment_id)["status"] == "running"
            )
            (trial,) = scheduler.db.trials(experiment_id, status="pending")
            assert trial["attempts"] == 0
            assert json.loads(trial["attempt_workers"]) == []

            # still poisoned: the same two-worker dance re-quarantines it
            for worker_id in ("worker-c", "worker-d"):
                FabricWorker(
                    tmp_path,
                    experiment_id=experiment_id,
                    worker_id=worker_id,
                    lease_points=8,
                    max_leases=1,
                    backend="serial",
                    poll_s=0.05,
                ).run()
            (row,) = scheduler.db.quarantined(experiment_id)
            assert set(json.loads(row["attempt_workers"])) == {
                "worker-c", "worker-d",
            }


@pytest.mark.slow
class TestSigkillDuringQuarantine:
    def test_migration_and_quarantine_survive_a_sigkill_resume(self, tmp_path):
        """SIGKILL the worker holding the poison: the quarantine verdict
        lands through lease expiry (no traceback to record), on a database
        that started life as schema v1 -- and the resumed experiment's
        non-poisoned records stay bitwise-equal to a clean run."""
        # seed a byte-faithful v1 database; the first open migrates it
        conn = sqlite3.connect(tmp_path / "fabric.db")
        conn.executescript(_V1_SCHEMA)
        conn.execute("PRAGMA user_version=1")
        conn.commit()
        conn.close()

        good = _good_specs(16)
        poison = _poison_spec()
        specs = [*good, poison]
        scheduler = FabricScheduler(
            tmp_path,
            lease_ttl=1.0,
            poll_s=0.05,
            backend="serial",
            max_attempts=2,
        )
        try:
            experiment_id, _ = scheduler.submit(specs)
            # worker A: one lease over everything -- 16 done, poison
            # failed once (attempt 1, requeued)
            FabricWorker(
                tmp_path,
                experiment_id=experiment_id,
                worker_id="worker-a",
                lease_points=32,
                max_leases=1,
                backend="serial",
                poll_s=0.05,
            ).run()
            assert scheduler.db.counts(experiment_id)["pending"] == 1

            # the victim claims the poison (attempt 2) and hangs inside
            # the solve on an injected delay -- SIGKILL it mid-trial
            victim = _spawn_cli_worker(
                tmp_path,
                experiment_id,
                "--lease-ttl", "1.0",
                fault_plan={
                    "sites": {"solve.delay": {"p": 1.0, "sleep_s": 60.0}}
                },
            )
            try:
                deadline = time.monotonic() + 90
                while scheduler.db.counts(experiment_id)["leased"] < 1:
                    if victim.poll() is not None:
                        pytest.fail("victim exited before claiming the poison")
                    if time.monotonic() > deadline:
                        pytest.fail("victim never claimed the poison trial")
                    time.sleep(0.02)
                os.kill(victim.pid, signal.SIGKILL)
                victim.wait(timeout=30)
            finally:
                if victim.poll() is None:
                    victim.kill()

            # resume: the dispatch loop reaps the dead lease; the budget
            # is spent across two distinct dead-or-alive workers, so the
            # reaper itself records the quarantine verdict
            final_counts = scheduler.wait(experiment_id, timeout=120)
            assert final_counts == {
                "pending": 0, "leased": 0, "done": 16,
                "failed": 0, "quarantined": 1,
            }
            (row,) = scheduler.db.quarantined(experiment_id)
            assert row["key"] == poison.key()
            assert "lease expired" in row["error"]
            # the worker that crashed honestly left its traceback behind
            assert "SPMD symmetry" in row["error"]

            report = scheduler.finalize(experiment_id, specs)
            assert _ok_lines(report) == _golden_lines(good)
        finally:
            scheduler.close()

        # the migrated database is at the current schema and a fresh
        # connection (a resume) still sees the quarantined row

        conn = sqlite3.connect(tmp_path / "fabric.db")
        assert conn.execute("PRAGMA user_version").fetchone()[0] == (
            DB_SCHEMA_VERSION
        )
        conn.close()
        with ExperimentDB(tmp_path) as db:
            (row,) = db.quarantined(experiment_id)
            assert row["key"] == poison.key()
