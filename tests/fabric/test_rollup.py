"""Fleet observability rollup: shipped telemetry, fleet view, timeline.

The anchor fixture is a real 3-worker fabric sweep with worker tracing
on -- the PR's acceptance scenario -- so every assertion here runs
against telemetry actual subprocess workers shipped, not synthetic rows.
"""

from __future__ import annotations

import json

import pytest

from repro.fabric import ExperimentDB, FabricScheduler
from repro.fabric.rollup import (
    append_worker_snapshot,
    fleet_rollup,
    merge_traces,
    obs_dir,
    read_worker_snapshots,
    sweep_timeline,
    worker_metrics_path,
    worker_trace_path,
)
from repro.obs import registry
from repro.params import paper_defaults
from repro.runner import JobSpec


def _specs() -> list[JobSpec]:
    return [
        JobSpec(params=paper_defaults(num_threads=nt, p_remote=pr))
        for nt in (2, 4, 6)
        for pr in (0.2, 0.4)
    ]


@pytest.fixture(scope="module")
def fleet_run(tmp_path_factory):
    """One 3-worker traced fabric sweep; returns (fabric_dir, manifest)."""
    fabric_dir = tmp_path_factory.mktemp("fabric")
    with FabricScheduler(
        fabric_dir, poll_s=0.05, trace_workers=True
    ) as scheduler:
        report = scheduler.run(_specs(), workers=3, timeout=180)
    assert report.ok
    return fabric_dir, report.manifest


class TestShippedTelemetry:
    def test_each_worker_ships_metrics_jsonl(self, fleet_run):
        fabric_dir, manifest = fleet_run
        files = sorted(obs_dir(fabric_dir).glob("metrics-*.jsonl"))
        assert len(files) == 3  # one per worker, single writer each
        snapshots = read_worker_snapshots(fabric_dir)
        assert len(snapshots) == 3
        for wid, lines in snapshots.items():
            assert lines, wid
            # every line carries the tally plus a registry snapshot
            for rec in lines:
                assert rec["worker_id"] == wid
                assert "counters" in rec["metrics"]

    def test_each_worker_ships_a_trace(self, fleet_run):
        fabric_dir, _ = fleet_run
        traces = sorted(obs_dir(fabric_dir).glob("trace-*.jsonl"))
        assert len(traces) == 3
        for path in traces:
            first = json.loads(path.read_text().splitlines()[0])
            assert first["kind"] == "meta"

    def test_merge_traces_keeps_one_meta(self, fleet_run, tmp_path):
        fabric_dir, _ = fleet_run
        out = tmp_path / "merged.jsonl"
        events = merge_traces(fabric_dir, out_path=out)
        metas = [e for e in events if e.get("kind") == "meta"]
        assert len(metas) == 1
        spans = [e for e in events if e.get("kind") == "span"]
        assert spans  # workers traced their solves
        assert len(out.read_text().splitlines()) == len(events)

    def test_snapshot_paths_are_sanitized(self, tmp_path):
        p = worker_metrics_path(tmp_path, "host:1234/evil")
        assert p.name == "metrics-host_1234_evil.jsonl"
        assert worker_trace_path(tmp_path, 2).name == "trace-w2.jsonl"

    def test_append_skips_malformed_tail(self, tmp_path):
        append_worker_snapshot(tmp_path, "w1", {"leases": 1}, now=5.0)
        path = worker_metrics_path(tmp_path, "w1")
        with open(path, "a") as fh:
            fh.write('{"truncated": ')  # SIGKILL mid-write
        snaps = read_worker_snapshots(tmp_path)
        assert [s["t"] for s in snaps["w1"]] == [5.0]

    def test_ship_failure_counts_but_never_raises(self, tmp_path):
        (tmp_path / "obs").write_text("not a directory")
        before = registry().counter("fabric.obs.ship_errors").value
        append_worker_snapshot(tmp_path, "w1", {})  # must not raise
        assert registry().counter("fabric.obs.ship_errors").value == before + 1


class TestFleetRollup:
    def test_manifest_carries_fleet_block(self, fleet_run):
        _, manifest = fleet_run
        fleet = manifest.fabric["fleet"]
        assert set(fleet["workers"])  # one entry per registered worker
        assert len(fleet["workers"]) == 3
        assert fleet["trace_files"] == [
            "trace-w0.jsonl", "trace-w1.jsonl", "trace-w2.jsonl",
        ]

    def test_per_worker_view(self, fleet_run):
        _, manifest = fleet_run
        workers = manifest.fabric["fleet"]["workers"]
        done = sum(w["trials_done"] for w in workers.values())
        assert done == 6  # every point solved exactly once across the fleet
        for w in workers.values():
            assert w["trials_failed"] == 0
            assert w["busy_s"] >= 0.0
            assert w["heartbeat_gap_s"] >= 0.0
            if w["trials_done"]:
                assert w["throughput_per_s"] > 0.0

    def test_lease_latency_summary(self, fleet_run):
        _, manifest = fleet_run
        lat = manifest.fabric["fleet"]["lease_latency_s"]
        assert lat["count"] >= 1
        assert 0.0 <= lat["p50"] <= lat["max"]
        assert manifest.fabric["fleet"]["leases_expired"] == 0

    def test_shipped_digest_filters_counter_namespaces(self, fleet_run):
        _, manifest = fleet_run
        shipped = manifest.fabric["fleet"]["shipped_metrics"]
        assert len(shipped) == 3
        for digest in shipped.values():
            assert digest["snapshots"] >= 1
            for name in digest["counters"]:
                assert name.split(".")[0] in {
                    "solver", "store", "fabric", "sweep",
                }

    def test_manifest_provenance_fields(self, fleet_run):
        _, manifest = fleet_run
        assert manifest.mode == "fabric"
        assert manifest.kernel in ("numpy", "numba")
        assert manifest.created_at > 0.0

    def test_rollup_direct_from_db(self, fleet_run):
        fabric_dir, manifest = fleet_run
        with ExperimentDB(fabric_dir) as db:
            fleet = fleet_rollup(
                db, manifest.fabric["experiment_id"], fabric_dir=fabric_dir
            )
        assert fleet["workers"] == manifest.fabric["fleet"]["workers"]


class TestSweepTimeline:
    def test_every_solved_trial_becomes_a_bar(self, fleet_run):
        fabric_dir, manifest = fleet_run
        with ExperimentDB(fabric_dir) as db:
            tl = sweep_timeline(db, manifest.fabric["experiment_id"])
        bars = [b for bars in tl["lanes"].values() for b in bars]
        assert len(bars) == 6
        assert tl["t0"] is not None and tl["t1"] >= tl["t0"]
        for b in bars:
            assert tl["t0"] <= b["start"] <= b["end"] <= tl["t1"]
            assert b["status"] == "done"

    def test_lanes_are_per_worker_and_sorted(self, fleet_run):
        fabric_dir, manifest = fleet_run
        with ExperimentDB(fabric_dir) as db:
            tl = sweep_timeline(db, manifest.fabric["experiment_id"])
        workers = set(manifest.fabric["fleet"]["workers"])
        assert set(tl["lanes"]) <= workers | {"(cache)"}
        for bars in tl["lanes"].values():
            starts = [b["start"] for b in bars]
            assert starts == sorted(starts)

    def test_empty_experiment_timeline(self, tmp_path):
        with FabricScheduler(tmp_path, poll_s=0.05) as scheduler:
            eid, _ = scheduler.submit(_specs())
            with ExperimentDB(tmp_path) as db:
                tl = sweep_timeline(db, eid)
        assert tl == {"t0": None, "t1": None, "lanes": {}}
