"""The worker partition guard: stop claiming when heartbeats cannot land.

A worker whose heartbeat thread cannot reach the database has already
lost its leases -- any reaper will expire and re-dispatch them -- so
continuing to claim would double-solve every point for the rest of its
lifetime.  After ``heartbeat_max_failures`` *consecutive* failures the
:class:`~repro.fabric.worker._Heartbeat` sets its ``broken`` event and
the main loop exits cleanly (counted as
``fabric.worker.partitioned_exits``), leaving the remaining trials
pending for healthy workers.
"""

from __future__ import annotations

import repro
from repro.fabric import ExperimentDB, FabricScheduler, FabricWorker
from repro.fabric.worker import _Heartbeat
from repro.obs import registry
from repro.params import paper_defaults
from repro.runner import JobSpec


def _specs(n: int) -> list[JobSpec]:
    return [
        JobSpec(params=paper_defaults(p_remote=round(0.05 + 0.001 * i, 4)))
        for i in range(n)
    ]


class TestHeartbeatGuard:
    def test_unreachable_db_trips_the_guard_immediately(self, tmp_path):
        """No connection at all: a worker must not run lease-less forever."""
        not_a_dir = tmp_path / "fabric.db"  # a FILE where a dir must be
        not_a_dir.write_text("junk")
        before = registry().counter("fabric.heartbeat_errors").value
        heart = _Heartbeat(not_a_dir / "nested", "w-1", ttl_s=0.15)
        try:
            assert heart.broken.wait(timeout=5.0)
            assert registry().counter("fabric.heartbeat_errors").value > before
        finally:
            heart.close()

    def test_consecutive_failures_set_broken_and_a_success_resets(
        self, tmp_path, monkeypatch
    ):
        with FabricScheduler(tmp_path, poll_s=0.05) as scheduler:
            scheduler.submit(_specs(1))
        fails = {"n": 0}
        real = ExperimentDB.touch_worker

        def flaky(self, worker_id):
            fails["n"] += 1
            if fails["n"] <= 4 and fails["n"] % 2 == 0:
                raise RuntimeError("transient db hiccup")
            return real(self, worker_id)

        monkeypatch.setattr(ExperimentDB, "touch_worker", flaky)
        # alternating success/failure never reaches 2 consecutive: the
        # guard must stay quiet through transient flapping
        heart = _Heartbeat(tmp_path, "w-flap", ttl_s=0.15, max_failures=2)
        try:
            assert not heart.broken.wait(timeout=1.0)
        finally:
            heart.close()


class TestWorkerPartitionExit:
    def test_partitioned_worker_stops_claiming_and_exits_cleanly(
        self, tmp_path, monkeypatch
    ):
        """Regression (ISSUE 9 satellite): K consecutive heartbeat failures
        -> the worker stops claiming, exits its run loop cleanly, and the
        unclaimed trials stay pending for healthy workers."""
        specs = _specs(60)
        with FabricScheduler(
            tmp_path, poll_s=0.05, backend="serial"
        ) as scheduler:
            experiment_id, _ = scheduler.submit(specs)

            def down(*args, **kwargs):
                raise RuntimeError("database partitioned away")

            monkeypatch.setattr(ExperimentDB, "heartbeat", down)
            monkeypatch.setattr(ExperimentDB, "touch_worker", down)
            # pace each solve so the guard trips while work remains
            prev = repro.configure(
                fault_plan={
                    "sites": {"solve.delay": {"p": 1.0, "sleep_s": 0.05}}
                }
            )
            before = registry().counter(
                "fabric.worker.partitioned_exits"
            ).value
            try:
                stats = FabricWorker(
                    tmp_path,
                    experiment_id=experiment_id,
                    worker_id="worker-cut-off",
                    lease_points=1,
                    lease_ttl=0.15,  # heartbeat every 0.05s
                    heartbeat_max_failures=3,
                    backend="serial",
                    poll_s=0.05,
                ).run()  # returns instead of raising: a clean exit
            finally:
                repro.configure(**prev)

            assert stats.leases < len(specs), "worker never stopped claiming"
            after = registry().counter(
                "fabric.worker.partitioned_exits"
            ).value
            assert after == before + 1
            counts = scheduler.db.counts(experiment_id)
            # everything it solved was reported; the rest stayed claimable
            assert counts["done"] == stats.solved
            assert counts["leased"] == 0
            assert counts["pending"] == len(specs) - stats.solved
            assert counts["pending"] > 0

            # a healthy worker (heartbeats restored by monkeypatch scope
            # at test end -- here, explicitly undone) drains the rest
            monkeypatch.undo()
            FabricWorker(
                tmp_path,
                experiment_id=experiment_id,
                worker_id="worker-healthy",
                lease_points=16,
                backend="serial",
                poll_s=0.05,
            ).run()
            assert scheduler.db.counts(experiment_id)["done"] == len(specs)
