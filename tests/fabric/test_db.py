"""Unit tests of the experiment database: the fabric's state machine.

Everything here is single-process and sleep-free -- lease expiry is driven
through ``reap_expired``'s explicit ``now`` parameter, so the tests pin
exact transition semantics (claim order, idempotent completion, expired
leases returning trials to ``pending``) without wall-clock flakiness.
"""

from __future__ import annotations

import sqlite3
import time

import pytest

from repro.fabric import DB_SCHEMA_VERSION, ExperimentDB, FabricError, worker_identity


def _payloads(n: int) -> list[dict[str, object]]:
    return [{"key": f"k{i:03d}", "method": "symmetric", "params": {"i": i}} for i in range(n)]


@pytest.fixture
def db(tmp_path):
    with ExperimentDB(tmp_path) as handle:
        yield handle


class TestExperiments:
    def test_create_then_resume_same_signature(self, db):
        eid, created = db.create_or_resume("a" * 64, "2", _payloads(3))
        assert created
        assert eid == "exp-" + "a" * 16
        again, created = db.create_or_resume("a" * 64, "2", _payloads(3))
        assert again == eid
        assert not created
        assert db.experiment(eid)["total_trials"] == 3
        assert db.counts(eid) == {"pending": 3, "leased": 0, "done": 0, "failed": 0}

    def test_signature_collision_with_different_content_is_refused(self, db):
        sig = "b" * 64
        db.create_or_resume(sig, "2", _payloads(2))
        with pytest.raises(FabricError, match="different"):
            db.create_or_resume(sig, "3", _payloads(2))

    def test_unknown_experiment_raises(self, db):
        with pytest.raises(FabricError, match="no experiment"):
            db.experiment("exp-nope")

    def test_latest_running_ignores_finished(self, db):
        eid1, _ = db.create_or_resume("c" * 64, "2", _payloads(1))
        assert db.latest_running() == eid1
        db.finish(eid1, "done")
        assert db.latest_running() is None
        assert db.experiment(eid1)["status"] == "done"

    def test_schema_version_mismatch_is_refused(self, tmp_path):
        ExperimentDB(tmp_path).close()
        conn = sqlite3.connect(tmp_path / "fabric.db")
        conn.execute(f"PRAGMA user_version={DB_SCHEMA_VERSION + 1}")
        conn.close()
        with pytest.raises(FabricError, match="schema version"):
            ExperimentDB(tmp_path)


class TestLeases:
    def test_claim_leases_in_seq_order_and_counts_attempts(self, db):
        eid, _ = db.create_or_resume("d" * 64, "2", _payloads(5))
        lease_id, payloads = db.claim(eid, "w1", limit=3, ttl_s=60)
        assert lease_id is not None
        assert [p["key"] for p in payloads] == ["k000", "k001", "k002"]
        assert db.counts(eid) == {"pending": 2, "leased": 3, "done": 0, "failed": 0}
        for trial in db.trials(eid, status="leased"):
            assert trial["attempts"] == 1
            assert trial["worker_id"] == "w1"
            assert trial["lease_id"] == lease_id

    def test_empty_claim_returns_none(self, db):
        eid, _ = db.create_or_resume("e" * 64, "2", _payloads(1))
        db.claim(eid, "w1", limit=8, ttl_s=60)
        lease_id, payloads = db.claim(eid, "w2", limit=8, ttl_s=60)
        assert lease_id is None
        assert payloads == []

    def test_expired_lease_returns_trials_to_pending(self, db):
        eid, _ = db.create_or_resume("f" * 64, "2", _payloads(4))
        lease_id, payloads = db.claim(eid, "w1", limit=2, ttl_s=10)
        db.complete_trial(eid, payloads[0]["key"], "w1", 0.1)
        # the lease dies with one trial done, one still leased
        redispatched = db.reap_expired(eid, now=time.time() + 11)
        assert redispatched == 1
        counts = db.counts(eid)
        assert counts == {"pending": 3, "leased": 0, "done": 1, "failed": 0}
        statuses = {l["lease_id"]: l["status"] for l in db.leases(eid)}
        assert statuses[lease_id] == "expired"
        # the returned trial keeps its attempt count and re-claims as 2
        _, payloads = db.claim(eid, "w2", limit=8, ttl_s=10)
        attempts = {t["key"]: t["attempts"] for t in db.trials(eid, status="leased")}
        assert attempts[payloads[0]["key"]] == 2

    def test_heartbeat_extends_past_expiry(self, db):
        eid, _ = db.create_or_resume("a1" + "0" * 62, "2", _payloads(1))
        lease_id, _ = db.claim(eid, "w1", limit=1, ttl_s=5)
        db.heartbeat(lease_id, "w1", ttl_s=120)
        assert db.reap_expired(eid, now=time.time() + 60) == 0
        assert db.counts(eid)["leased"] == 1

    def test_released_lease_is_not_reaped(self, db):
        eid, _ = db.create_or_resume("a2" + "0" * 62, "2", _payloads(1))
        lease_id, payloads = db.claim(eid, "w1", limit=1, ttl_s=5)
        db.complete_trial(eid, payloads[0]["key"], "w1", 0.1)
        db.release_lease(lease_id)
        assert db.reap_expired(eid, now=time.time() + 60) == 0
        assert db.leases(eid)[0]["status"] == "released"


class TestTrials:
    def test_complete_is_idempotent_first_report_wins(self, db):
        eid, _ = db.create_or_resume("a3" + "0" * 62, "2", _payloads(1))
        _, payloads = db.claim(eid, "w1", limit=1, ttl_s=60)
        key = payloads[0]["key"]
        db.complete_trial(eid, key, "w1", 1.5)
        db.complete_trial(eid, key, "w2", 9.9)  # late duplicate report
        db.fail_trial(eid, key, "w3", "boom")  # even a late failure
        (trial,) = db.trials(eid)
        assert trial["status"] == "done"
        assert trial["worker_id"] == "w1"
        assert trial["elapsed_s"] == 1.5

    def test_failed_trial_records_error(self, db):
        eid, _ = db.create_or_resume("a4" + "0" * 62, "2", _payloads(2))
        _, payloads = db.claim(eid, "w1", limit=2, ttl_s=60)
        db.fail_trial(eid, payloads[0]["key"], "w1", "did not converge")
        (trial,) = db.trials(eid, status="failed")
        assert trial["error"] == "did not converge"
        assert db.counts(eid)["failed"] == 1

    def test_stats_reflect_redispatch(self, db):
        eid, _ = db.create_or_resume("a5" + "0" * 62, "2", _payloads(2))
        db.claim(eid, "w1", limit=2, ttl_s=10)
        db.reap_expired(eid, now=time.time() + 11)
        _, payloads = db.claim(eid, "w2", limit=2, ttl_s=60)
        for p in payloads:
            db.complete_trial(eid, p["key"], "w2", 0.2)
        stats = db.stats(eid)
        assert stats["leases_granted"] == 2
        assert stats["leases_expired"] == 1
        assert stats["dispatch_attempts"] == 4
        assert stats["max_attempts"] == 2
        assert stats["redispatched_trials"] == 2
        assert stats["trials"]["done"] == 2


class TestWorkers:
    def test_register_and_exit(self, db):
        eid, _ = db.create_or_resume("a6" + "0" * 62, "2", _payloads(1))
        db.register_worker(eid, "w1")
        db.register_worker(eid, "w2")
        assert {w["worker_id"] for w in db.workers(eid)} == {"w1", "w2"}
        db.worker_exit("w1")
        statuses = {w["worker_id"]: w["status"] for w in db.workers(eid)}
        assert statuses == {"w1": "exited", "w2": "active"}

    def test_worker_identity_is_unique_per_pid(self):
        assert worker_identity() != worker_identity("alt")
        assert worker_identity("alt").endswith("-alt")
