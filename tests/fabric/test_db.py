"""Unit tests of the experiment database: the fabric's state machine.

Everything here is single-process and sleep-free -- lease expiry is driven
through ``reap_expired``'s explicit ``now`` parameter, so the tests pin
exact transition semantics (claim order, idempotent completion, expired
leases returning trials to ``pending``) without wall-clock flakiness.
"""

from __future__ import annotations

import sqlite3
import time

import pytest

from repro.fabric import DB_SCHEMA_VERSION, ExperimentDB, FabricError, worker_identity


#: the schema this project shipped as ``user_version=1`` -- kept verbatim so
#: the migration test exercises a byte-faithful old database
_V1_SCHEMA = """
CREATE TABLE experiments (
    experiment_id  TEXT PRIMARY KEY,
    signature      TEXT NOT NULL,
    solver_version TEXT NOT NULL,
    status         TEXT NOT NULL,
    total_trials   INTEGER NOT NULL,
    created_s      REAL NOT NULL,
    finished_s     REAL,
    meta           TEXT NOT NULL
);
CREATE TABLE trials (
    experiment_id  TEXT NOT NULL,
    seq            INTEGER NOT NULL,
    key            TEXT NOT NULL,
    payload        TEXT NOT NULL,
    status         TEXT NOT NULL,
    attempts       INTEGER NOT NULL DEFAULT 0,
    from_cache     INTEGER NOT NULL DEFAULT 0,
    worker_id      TEXT,
    lease_id       INTEGER,
    elapsed_s      REAL,
    error          TEXT,
    updated_s      REAL NOT NULL,
    PRIMARY KEY (experiment_id, key)
);
CREATE INDEX trials_by_status ON trials (experiment_id, status, seq);
CREATE TABLE leases (
    lease_id       INTEGER PRIMARY KEY AUTOINCREMENT,
    experiment_id  TEXT NOT NULL,
    worker_id      TEXT NOT NULL,
    status         TEXT NOT NULL,
    granted_s      REAL NOT NULL,
    expires_s      REAL NOT NULL,
    released_s     REAL,
    trial_count    INTEGER NOT NULL
);
CREATE TABLE workers (
    worker_id      TEXT PRIMARY KEY,
    experiment_id  TEXT NOT NULL,
    pid            INTEGER,
    host           TEXT,
    started_s      REAL NOT NULL,
    heartbeat_s    REAL NOT NULL,
    status         TEXT NOT NULL
);
"""


def _payloads(n: int) -> list[dict[str, object]]:
    return [{"key": f"k{i:03d}", "method": "symmetric", "params": {"i": i}} for i in range(n)]


@pytest.fixture
def db(tmp_path):
    with ExperimentDB(tmp_path) as handle:
        yield handle


class TestExperiments:
    def test_create_then_resume_same_signature(self, db):
        eid, created = db.create_or_resume("a" * 64, "2", _payloads(3))
        assert created
        assert eid == "exp-" + "a" * 16
        again, created = db.create_or_resume("a" * 64, "2", _payloads(3))
        assert again == eid
        assert not created
        assert db.experiment(eid)["total_trials"] == 3
        assert db.counts(eid) == {
            "pending": 3, "leased": 0, "done": 0, "failed": 0, "quarantined": 0
        }

    def test_signature_collision_with_different_content_is_refused(self, db):
        sig = "b" * 64
        db.create_or_resume(sig, "2", _payloads(2))
        with pytest.raises(FabricError, match="different"):
            db.create_or_resume(sig, "3", _payloads(2))

    def test_unknown_experiment_raises(self, db):
        with pytest.raises(FabricError, match="no experiment"):
            db.experiment("exp-nope")

    def test_latest_running_ignores_finished(self, db):
        eid1, _ = db.create_or_resume("c" * 64, "2", _payloads(1))
        assert db.latest_running() == eid1
        db.finish(eid1, "done")
        assert db.latest_running() is None
        assert db.experiment(eid1)["status"] == "done"

    def test_schema_version_mismatch_is_refused(self, tmp_path):
        ExperimentDB(tmp_path).close()
        conn = sqlite3.connect(tmp_path / "fabric.db")
        conn.execute(f"PRAGMA user_version={DB_SCHEMA_VERSION + 1}")
        conn.close()
        with pytest.raises(FabricError, match="schema version"):
            ExperimentDB(tmp_path)

    def test_v1_database_migrates_in_place(self, tmp_path):
        # build a faithful v1 database by hand: v2 columns absent
        conn = sqlite3.connect(tmp_path / "fabric.db")
        conn.executescript(_V1_SCHEMA)
        conn.execute("PRAGMA user_version=1")
        conn.execute(
            "INSERT INTO experiments (experiment_id, signature, "
            "solver_version, status, total_trials, created_s, meta) "
            "VALUES ('exp-old', 'aa', '2', 'running', 1, 1.0, '{}')"
        )
        conn.execute(
            "INSERT INTO trials (experiment_id, seq, key, payload, status, "
            "updated_s) VALUES ('exp-old', 0, 'k000', "
            "'{\"key\": \"k000\", \"method\": \"m\", \"params\": {}}', "
            "'pending', 1.0)"
        )
        conn.commit()
        conn.close()
        with ExperimentDB(tmp_path) as db:
            # migration backfilled the new columns with their defaults
            assert db.experiment("exp-old")["status"] == "running"
            (trial,) = db.trials("exp-old")
            assert trial["status"] == "pending"
            lease_id, payloads = db.claim("exp-old", "w1", limit=1, ttl_s=60)
            assert lease_id is not None and payloads[0]["key"] == "k000"
        conn = sqlite3.connect(tmp_path / "fabric.db")
        assert conn.execute("PRAGMA user_version").fetchone()[0] == (
            DB_SCHEMA_VERSION
        )
        conn.close()


class TestLeases:
    def test_claim_leases_in_seq_order_and_counts_attempts(self, db):
        eid, _ = db.create_or_resume("d" * 64, "2", _payloads(5))
        lease_id, payloads = db.claim(eid, "w1", limit=3, ttl_s=60)
        assert lease_id is not None
        assert [p["key"] for p in payloads] == ["k000", "k001", "k002"]
        assert db.counts(eid) == {
            "pending": 2, "leased": 3, "done": 0, "failed": 0, "quarantined": 0
        }
        for trial in db.trials(eid, status="leased"):
            assert trial["attempts"] == 1
            assert trial["worker_id"] == "w1"
            assert trial["lease_id"] == lease_id

    def test_empty_claim_returns_none(self, db):
        eid, _ = db.create_or_resume("e" * 64, "2", _payloads(1))
        db.claim(eid, "w1", limit=8, ttl_s=60)
        lease_id, payloads = db.claim(eid, "w2", limit=8, ttl_s=60)
        assert lease_id is None
        assert payloads == []

    def test_expired_lease_returns_trials_to_pending(self, db):
        eid, _ = db.create_or_resume("f" * 64, "2", _payloads(4))
        lease_id, payloads = db.claim(eid, "w1", limit=2, ttl_s=10)
        db.complete_trial(eid, payloads[0]["key"], "w1", 0.1)
        # the lease dies with one trial done, one still leased
        redispatched = db.reap_expired(eid, now=time.time() + 11)
        assert redispatched == 1
        counts = db.counts(eid)
        assert counts == {
            "pending": 3, "leased": 0, "done": 1, "failed": 0, "quarantined": 0
        }
        statuses = {l["lease_id"]: l["status"] for l in db.leases(eid)}
        assert statuses[lease_id] == "expired"
        # the returned trial keeps its attempt count and re-claims as 2
        _, payloads = db.claim(eid, "w2", limit=8, ttl_s=10)
        attempts = {t["key"]: t["attempts"] for t in db.trials(eid, status="leased")}
        assert attempts[payloads[0]["key"]] == 2

    def test_heartbeat_extends_past_expiry(self, db):
        eid, _ = db.create_or_resume("a1" + "0" * 62, "2", _payloads(1))
        lease_id, _ = db.claim(eid, "w1", limit=1, ttl_s=5)
        db.heartbeat(lease_id, "w1", ttl_s=120)
        assert db.reap_expired(eid, now=time.time() + 60) == 0
        assert db.counts(eid)["leased"] == 1

    def test_released_lease_is_not_reaped(self, db):
        eid, _ = db.create_or_resume("a2" + "0" * 62, "2", _payloads(1))
        lease_id, payloads = db.claim(eid, "w1", limit=1, ttl_s=5)
        db.complete_trial(eid, payloads[0]["key"], "w1", 0.1)
        db.release_lease(lease_id)
        assert db.reap_expired(eid, now=time.time() + 60) == 0
        assert db.leases(eid)[0]["status"] == "released"


class TestTrials:
    def test_complete_is_idempotent_first_report_wins(self, db):
        eid, _ = db.create_or_resume("a3" + "0" * 62, "2", _payloads(1))
        _, payloads = db.claim(eid, "w1", limit=1, ttl_s=60)
        key = payloads[0]["key"]
        db.complete_trial(eid, key, "w1", 1.5)
        db.complete_trial(eid, key, "w2", 9.9)  # late duplicate report
        db.fail_trial(eid, key, "w3", "boom")  # even a late failure
        (trial,) = db.trials(eid)
        assert trial["status"] == "done"
        assert trial["worker_id"] == "w1"
        assert trial["elapsed_s"] == 1.5

    def test_failed_trial_requeues_with_error_until_budget(self, db):
        eid, _ = db.create_or_resume("a4" + "0" * 62, "2", _payloads(2))
        _, payloads = db.claim(eid, "w1", limit=2, ttl_s=60)
        key = payloads[0]["key"]
        assert db.fail_trial(eid, key, "w1", "did not converge") == "pending"
        (trial,) = db.trials(eid, status="pending")
        assert trial["key"] == key
        assert trial["error"] == "did not converge"
        assert trial["attempts"] == 1
        assert db.counts(eid)["failed"] == 0

    def test_exhausted_trial_single_worker_goes_failed(self, db):
        eid, _ = db.create_or_resume(
            "b4" + "0" * 62, "2", _payloads(1), max_attempts=2
        )
        status = None
        for _ in range(2):
            _, payloads = db.claim(eid, "w1", limit=1, ttl_s=60)
            status = db.fail_trial(eid, payloads[0]["key"], "w1", "boom")
        # one worker exhausted the budget alone: could be a poisoned host,
        # not a poison trial, so it stays plain failed
        assert status == "failed"
        (trial,) = db.trials(eid, status="failed")
        assert trial["error"] == "boom"

    def test_exhausted_trial_across_workers_is_quarantined(self, db):
        eid, _ = db.create_or_resume(
            "c4" + "0" * 62, "2", _payloads(1), max_attempts=2
        )
        _, payloads = db.claim(eid, "w1", limit=1, ttl_s=60)
        assert db.fail_trial(eid, payloads[0]["key"], "w1", "boom 1") == "pending"
        _, payloads = db.claim(eid, "w2", limit=1, ttl_s=60)
        status = db.fail_trial(eid, payloads[0]["key"], "w2", "boom 2")
        assert status == "quarantined"
        (trial,) = db.quarantined(eid)
        assert trial["error"] == "boom 2"  # last traceback survives
        assert trial["attempts"] == 2
        assert db.counts(eid)["quarantined"] == 1

    def test_retry_quarantined_resets_budget_and_reopens(self, db):
        eid, _ = db.create_or_resume(
            "d4" + "0" * 62, "2", _payloads(1), max_attempts=2
        )
        for worker in ("w1", "w2"):
            _, payloads = db.claim(eid, worker, limit=1, ttl_s=60)
            db.fail_trial(eid, payloads[0]["key"], worker, "boom")
        db.finish(eid, "failed")
        assert db.retry_quarantined(eid) == 1
        (trial,) = db.trials(eid, status="pending")
        assert trial["attempts"] == 0
        assert db.experiment(eid)["status"] == "running"
        assert db.retry_quarantined(eid) == 0  # nothing left to retry

    def test_suspect_trial_claims_solo_preferring_fresh_worker(self, db):
        eid, _ = db.create_or_resume("e4" + "0" * 62, "2", _payloads(3))
        # k000 fails three times under w1 -> suspect (SUSPECT_AFTER=3)
        for _ in range(3):
            _, payloads = db.claim(eid, "w1", limit=1, ttl_s=60)
            assert payloads[0]["key"] == "k000"
            db.fail_trial(eid, "k000", "w1", "boom")
        # a group claim skips the suspect even though it is first in seq order
        _, payloads = db.claim(eid, "w1", limit=8, ttl_s=60)
        assert [p["key"] for p in payloads] == ["k001", "k002"]
        # only the suspect remains: it goes out solo, to the fresh worker
        _, payloads = db.claim(eid, "w2", limit=8, ttl_s=60)
        assert [p["key"] for p in payloads] == ["k000"]

    def test_stats_reflect_redispatch(self, db):
        eid, _ = db.create_or_resume("a5" + "0" * 62, "2", _payloads(2))
        db.claim(eid, "w1", limit=2, ttl_s=10)
        db.reap_expired(eid, now=time.time() + 11)
        _, payloads = db.claim(eid, "w2", limit=2, ttl_s=60)
        for p in payloads:
            db.complete_trial(eid, p["key"], "w2", 0.2)
        stats = db.stats(eid)
        assert stats["leases_granted"] == 2
        assert stats["leases_expired"] == 1
        assert stats["dispatch_attempts"] == 4
        assert stats["max_attempts"] == 2
        assert stats["redispatched_trials"] == 2
        assert stats["trials"]["done"] == 2


class TestWorkers:
    def test_register_and_exit(self, db):
        eid, _ = db.create_or_resume("a6" + "0" * 62, "2", _payloads(1))
        db.register_worker(eid, "w1")
        db.register_worker(eid, "w2")
        assert {w["worker_id"] for w in db.workers(eid)} == {"w1", "w2"}
        db.worker_exit("w1")
        statuses = {w["worker_id"]: w["status"] for w in db.workers(eid)}
        assert statuses == {"w1": "exited", "w2": "active"}

    def test_worker_identity_is_unique_per_pid(self):
        assert worker_identity() != worker_identity("alt")
        assert worker_identity("alt").endswith("-alt")
