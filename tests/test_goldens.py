"""Golden regression pins for every scalar the paper's tables/figures report.

Each golden is the JSON-converted ``.data`` payload of one experiment
generator (Tables 2-4, Figures 4-10) plus the model-side Figure-11 points.
The committed files under ``tests/goldens/`` are the reference; any solver
change that moves a pinned scalar by more than 1e-9 (relative) fails here,
which is what lets the batched AMVA kernel be swapped in with confidence.

Regenerate deliberately with ``pytest tests/test_goldens.py --update-goldens``
after an intentional numerical change, and commit the diff.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import experiments
from repro.core import MMSModel
from repro.params import paper_defaults

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: relative tolerance for pinned scalars (absolute for values near zero)
RTOL = 1e-9
ATOL = 1e-12


def _jsonable(obj: object) -> object:
    """Canonical JSON-safe form: numpy collapsed, dict keys stringified."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return _jsonable(obj.tolist())
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        return obj.item()
    if isinstance(obj, float) and not math.isfinite(obj):
        return repr(obj)  # JSON has no Inf/NaN; pin the repr instead
    return obj


def _fig11_model_side() -> dict[str, object]:
    """The model half of Figure 11 (simulation is pinned elsewhere)."""
    rows = []
    for s in (10.0, 20.0):
        for nt in (1, 2, 4, 6, 8, 10):
            params = paper_defaults(num_threads=nt, p_remote=0.5, switch_delay=s)
            perf = MMSModel(params).solve()
            rows.append(
                {
                    "switch_delay": s,
                    "num_threads": nt,
                    **{k: float(v) for k, v in perf.summary().items()},
                }
            )
    return {"rows": rows}


def _worksteal_table() -> dict[str, object]:
    """Gast-bound solve measures over workers x latency (table style)."""
    from repro.scenarios import get_scenario

    scen = get_scenario("worksteal")
    rows = []
    for workers in (1, 2, 4, 8, 16):
        for latency in (0.0, 1.0, 10.0, 100.0):
            params = scen.default_params().with_(
                num_workers=workers, latency=latency
            )
            perf = scen.solve(params)
            rows.append(
                {
                    "num_workers": workers,
                    "latency": latency,
                    **{k: float(v) for k, v in perf.summary().items()},
                }
            )
    return {"rows": rows}


def _worksteal_lattice() -> dict[str, object]:
    """Figure-style efficiency lattice, swept through the managed runner."""
    import repro

    return {
        "records": repro.sweep(
            {"num_workers": [2, 4, 8], "latency": [0.5, 2.0, 8.0, 32.0]},
            scenario="worksteal",
            measure="efficiency",
        )
    }


def _hier_table() -> dict[str, object]:
    """Multi-class AMVA measures over cluster shapes x gateway slowdowns."""
    from repro.scenarios import get_scenario
    from repro.scenarios.hier import HierParams

    scen = get_scenario("hier")
    rows = []
    for clusters, cluster_size in ((1, 4), (2, 2), (4, 2)):
        for inter_delay in (2.0, 20.0, 80.0):
            params = HierParams(
                clusters=clusters,
                cluster_size=cluster_size,
                num_threads=4,
                inter_delay=inter_delay,
            )
            perf = scen.solve(params)
            rows.append(
                {
                    "clusters": clusters,
                    "cluster_size": cluster_size,
                    "inter_delay": inter_delay,
                    "converged": bool(perf.converged),
                    **{k: float(v) for k, v in perf.summary().items()},
                }
            )
    return {"rows": rows}


def _hier_lattice() -> dict[str, object]:
    """Figure-style U_p lattice (threads x gateway delay) through the runner."""
    import repro
    from repro.scenarios.hier import HierParams

    return {
        "records": repro.sweep(
            {"num_threads": [1, 2, 4, 8], "inter_delay": [5.0, 40.0]},
            base=HierParams(clusters=2, cluster_size=2),
            scenario="hier",
            measure="U_p",
        )
    }


#: golden name -> callable producing the JSON-safe payload to pin
GOLDENS = {
    "table2": lambda: experiments.table2_network_tolerance().data,
    "table3": lambda: experiments.table3_partitioning_network().data,
    "table4": lambda: experiments.table4_partitioning_memory().data,
    "fig4": lambda: experiments.fig4_5_workload_surfaces(runlength=10.0).data,
    "fig5": lambda: experiments.fig4_5_workload_surfaces(runlength=20.0).data,
    "fig6": lambda: experiments.fig6_tolerance_surface().data,
    "fig7": lambda: experiments.fig7_iso_work_lines().data,
    "fig8": lambda: experiments.fig8_memory_surface().data,
    "fig9": lambda: experiments.fig9_scaling_tolerance().data,
    "fig10": lambda: experiments.fig10_throughput_scaling().data,
    "fig11_model": _fig11_model_side,
    "worksteal_table": _worksteal_table,
    "worksteal_lattice": _worksteal_lattice,
    "hier_table": _hier_table,
    "hier_lattice": _hier_lattice,
}


def _compare(path: str, expected: object, actual: object) -> list[str]:
    """Recursive comparison; returns human-readable mismatch descriptions."""
    errors: list[str] = []
    if isinstance(expected, dict) or isinstance(actual, dict):
        if not (isinstance(expected, dict) and isinstance(actual, dict)):
            return [f"{path}: type mismatch {type(expected).__name__} vs "
                    f"{type(actual).__name__}"]
        missing = set(expected) - set(actual)
        added = set(actual) - set(expected)
        for k in sorted(missing):
            errors.append(f"{path}.{k}: missing from current output")
        for k in sorted(added):
            errors.append(f"{path}.{k}: not in golden (regenerate?)")
        for k in sorted(set(expected) & set(actual)):
            errors.extend(_compare(f"{path}.{k}", expected[k], actual[k]))
        return errors
    if isinstance(expected, list) or isinstance(actual, list):
        if not (isinstance(expected, list) and isinstance(actual, list)):
            return [f"{path}: type mismatch {type(expected).__name__} vs "
                    f"{type(actual).__name__}"]
        if len(expected) != len(actual):
            return [f"{path}: length {len(expected)} != {len(actual)}"]
        for i, (e, a) in enumerate(zip(expected, actual)):
            errors.extend(_compare(f"{path}[{i}]", e, a))
        return errors
    if isinstance(expected, (int, float)) and isinstance(actual, (int, float)) \
            and not isinstance(expected, bool) and not isinstance(actual, bool):
        if not math.isclose(expected, actual, rel_tol=RTOL, abs_tol=ATOL):
            errors.append(
                f"{path}: {expected!r} != {actual!r} "
                f"(diff {abs(expected - actual):.3e})"
            )
        return errors
    if expected != actual:
        errors.append(f"{path}: {expected!r} != {actual!r}")
    return errors


@pytest.mark.parametrize("name", sorted(GOLDENS))
def test_golden(name: str, update_goldens: bool) -> None:
    payload = _jsonable(GOLDENS[name]())
    path = GOLDEN_DIR / f"{name}.json"
    if update_goldens:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(payload, indent=1, sort_keys=True, allow_nan=False) + "\n"
        )
        return
    assert path.exists(), (
        f"golden {path} missing -- generate it with "
        "pytest tests/test_goldens.py --update-goldens"
    )
    expected = json.loads(path.read_text())
    errors = _compare(name, expected, payload)
    assert not errors, "golden drift:\n" + "\n".join(errors[:40])


def test_update_goldens_is_deterministic(tmp_path, monkeypatch) -> None:
    """Two regenerations of one golden produce byte-identical files."""
    name = "table2"
    a = json.dumps(_jsonable(GOLDENS[name]()), indent=1, sort_keys=True)
    b = json.dumps(_jsonable(GOLDENS[name]()), indent=1, sort_keys=True)
    assert a == b
