"""Goodput under overload: admission control vs unprotected collapse.

The tentpole's acceptance bar (ISSUE 9): drive the HTTP service at ~2x the
client fleet that saturates it.  Every response is judged against a
client-side latency SLO; **goodput** is responses that beat it.  With the
CoDel-style shedder on, sustained queue estimates above ``target_wait_s``
flip the service into drop state and excess arrivals bounce immediately
with 503 + ``Retry-After`` -- the queue stays short, and what the service
does answer still beats the SLO, keeping goodput >= 80% of measured peak.
The identical drive against an unprotected service documents the collapse
mode this prevents: every arrival is accepted, the queue grows to the full
client fleet, and *every* answer arrives after the SLO -- near-zero
goodput at full throughput.

Clients are :class:`repro.client.SolveClient` instances in a closed loop
with in-client retries disabled; a rejected client instead pauses for a
Retry-After-scale beat and then re-offers, so the fleet keeps pressing
well past saturation without degenerating into a rejection storm.
Deadlines are deliberately *not* sent to the server: server-side
deadline expiry is its own (orthogonal) protection, and sending it would
let the unprotected service cheaply expire doomed requests instead of
demonstrating the unbounded-queue failure.  Results are archived to
``benchmarks/results/perf_overload.json``.
"""

import json
import random
import threading
import time

from repro.client import ClientError, SolveClient
from repro.serve import ServiceConfig, SolveService, build_server

from conftest import RESULTS_DIR, run_once

#: every request is a scalar ``amva`` solve of a num_threads=24 model:
#: ~10ms of load-independent work.  Two properties matter.  Heavy: the
#: service saturates near 100 rps, far below what even a handful of
#: closed-loop clients can offer, so congestion lives *in the server's
#: queue* where admission control can see it (with ~2ms solves the
#: bottleneck moves into this process's GIL-bound client threads and
#: the experiment measures the harness).  Scalar: ``symmetric`` points
#: coalesce into one vectorised batch per backlog, which makes capacity
#: grow with queue depth -- a service that speeds up under load cannot
#: demonstrate queueing collapse
POINT_METHOD = "amva"
POINT_THREADS = 24
#: closed-loop clients measuring saturation goodput (the peak): enough
#: to keep the solver busy, few enough that queue wait (~3 * 10ms ~
#: 30ms) stays under the shedder's target so peak itself never sheds
PEAK_CLIENTS = 4
#: 3.5x the saturating fleet -- unprotected queue wait (~13 * 10ms ~
#: 130ms) lands past the SLO for every steady-state response
OVERLOAD_CLIENTS = 14
#: seconds per phase (warm-up + measured window)
PHASE_S = 6.0
#: responses completing inside this initial window are not counted, in
#: every phase equally: the drop latch needs a CoDel interval of late
#: completions before it can engage, so the first second of an overload
#: phase measures the flood transient, not the steady state either
#: service settles into
WARMUP_S = 1.5
#: latency SLO -- a response slower than this is not goodput.  Judged on
#: the *server-reported* ``latency_s`` (enqueue -> resolve, so the full
#: queue sojourn that overload inflates is counted) rather than client
#: wall time: clients and server share this process's GIL, and with 100+
#: threads the client-side measurement folds in harness scheduling noise
#: the service can neither observe nor shed
SLO_S = 0.10
#: the shedder's target queue wait: enough SLO headroom for solve time,
#: deep enough a queue that post-shed dips do not drain it idle
TARGET_WAIT_S = 0.06
#: back-off after a rejection, jittered, standing in for the server's
#: Retry-After hint (~0.05-0.1s here).  This is part of the protocol,
#: not a convenience: rejected clients re-arriving within milliseconds
#: are a 2000+ rps rejection storm whose thread contention inflates the
#: very service-time signal admission control steers by, and re-arriving
#: in lockstep floods/drains the queue in herd-sized waves
REJECT_PAUSE_RANGE_S = (0.05, 0.25)


def _service(protected: bool) -> SolveService:
    return SolveService(
        ServiceConfig(
            max_batch=1,  # scalar flushes: capacity is 1/solve_time
            min_linger_s=0.0,
            max_linger_s=0.004,
            adaptive=False,
            memory_cache=0,
            max_queue=4096,
            target_wait_s=TARGET_WAIT_S if protected else 0.0,
        )
    )


def _drive(base_url: str, clients: int, phase_s: float) -> dict:
    """Closed loop, unique points, no client retries; returns goodput."""
    counts = {"good": 0, "late": 0, "rejected": 0}
    lock = threading.Lock()
    t0 = time.monotonic()
    warm = t0 + WARMUP_S
    stop = t0 + phase_s
    start = threading.Barrier(clients + 1)

    def worker(c: int) -> None:
        client = SolveClient(
            base_url, client_id=f"c{c}", max_attempts=1, timeout_s=30.0
        )
        rng = random.Random(1000 + c)
        mine = {"good": 0, "late": 0, "rejected": 0}
        i = 0
        start.wait()
        while time.monotonic() < stop:
            point = {
                "num_threads": POINT_THREADS,
                "p_remote": 0.01 + 1e-6 * (c * 10_000 + i),
            }
            i += 1
            try:
                reply = client.solve(point=point, method=POINT_METHOD)
            except ClientError:
                if time.monotonic() >= warm:
                    mine["rejected"] += 1
                time.sleep(rng.uniform(*REJECT_PAUSE_RANGE_S))
                continue
            if time.monotonic() < warm:
                continue
            if reply.latency_s <= SLO_S:
                mine["good"] += 1
            else:
                mine["late"] += 1
        with lock:
            for k in counts:
                counts[k] += mine[k]

    threads = [
        threading.Thread(target=worker, args=(c,)) for c in range(clients)
    ]
    for t in threads:
        t.start()
    start.wait()
    for t in threads:
        t.join()
    measured_s = phase_s - WARMUP_S
    total = sum(counts.values())
    return {
        "clients": clients,
        "phase_s": phase_s,
        "measured_s": measured_s,
        **counts,
        "offered_rps": total / measured_s,
        "goodput_rps": counts["good"] / measured_s,
    }


def _run_phase(protected: bool, clients: int) -> dict:
    service = _service(protected)
    server = build_server("127.0.0.1", 0, service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        row = _drive(f"http://{host}:{port}", clients, PHASE_S)
    finally:
        server.shutdown()
        server.server_close()
        service.close(drain=True)
        thread.join(timeout=10)
    stats = service.stats()
    row["shed"] = stats["shed"]
    row["rate_limited"] = stats["rate_limited"]
    row["responses"] = stats["responses"]
    return row


def _measure_all() -> dict:
    peak = _run_phase(protected=True, clients=PEAK_CLIENTS)
    overload_protected = _run_phase(protected=True, clients=OVERLOAD_CLIENTS)
    overload_naked = _run_phase(protected=False, clients=OVERLOAD_CLIENTS)
    return {
        "slo_s": SLO_S,
        "peak": peak,
        "overload_protected": overload_protected,
        "overload_unprotected": overload_naked,
        "goodput_retention": (
            overload_protected["goodput_rps"] / peak["goodput_rps"]
            if peak["goodput_rps"]
            else 0.0
        ),
    }


def test_overload_goodput_holds_with_admission_control(benchmark, archive):
    data = run_once(benchmark, _measure_all)
    lines = [
        "phase                  clients  good   late   rejected  goodput_rps",
    ]
    for name in ("peak", "overload_protected", "overload_unprotected"):
        row = data[name]
        lines.append(
            f"{name:22s} {row['clients']:7d}  {row['good']:5d}  "
            f"{row['late']:5d}  {row['rejected']:8d}  "
            f"{row['goodput_rps']:11.1f}"
        )
    lines.append(f"goodput retention at 2x: {data['goodput_retention']:.2f}")
    text = "\n".join(lines)
    archive("perf_overload", text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "perf_overload.json").write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n"
    )

    # the acceptance bar: protected goodput at 2x saturation stays within
    # 80% of peak, and the shedder (not the queue bound) is what said no
    assert data["goodput_retention"] >= 0.80, text
    assert data["overload_protected"]["shed"] > 0, text
    # the unprotected service must demonstrate the collapse the shedder
    # prevents: materially worse goodput under the identical drive
    assert data["overload_unprotected"]["goodput_rps"] <= (
        0.5 * data["overload_protected"]["goodput_rps"]
    ), text
