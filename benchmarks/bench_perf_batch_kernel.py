"""Batched AMVA kernel vs the serial per-point loop on the Figure-4 lattice.

The acceptance bar for the batched backend: on the paper's 176-point
Figure-4 lattice (11 thread counts x 16 remote fractions, 4x4 machine) the
stacked fixed point must reproduce the scalar results bitwise (symmetric
path) and beat the per-point loop by at least 5x.  The kernel axis repeats
the exercise one level down: the numba-compiled kernel must be bitwise
equal to the numpy reference and at least 5x faster -- a gate that *skips*
(never fails) where numba is not installed, so the main CI job pins the
masked reference path and a dedicated numba job pins the compiled one.
The measured timings and telemetry are archived as JSON under
``benchmarks/results/`` so the numbers cited in docs come from a real run.
"""

import json
import time

import numpy as np
import pytest

from repro.core.model import MMSModel, solve_points
from repro.params import paper_defaults
from repro.queueing import solve_symmetric, solve_symmetric_batch
from repro.queueing.kernels import available_kernels

from conftest import RESULTS_DIR, run_once

THREADS = (1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20)
P_REMOTES = tuple(round(0.05 * i, 2) for i in range(1, 17))


def _lattice():
    return [
        paper_defaults(num_threads=n, p_remote=p)
        for n in THREADS
        for p in P_REMOTES
    ]


@pytest.fixture(scope="module")
def lattice_arrays():
    points = _lattice()
    arrays = [MMSModel(p).station_arrays() for p in points]
    return points, arrays


def test_perf_batch_kernel_vs_serial_loop(benchmark, lattice_arrays):
    """One measured round of each path, plus the 5x/bitwise assertions."""
    points, arrays = lattice_arrays
    pops = np.array([p.workload.num_threads for p in points])
    visits = np.stack([a[0] for a in arrays])
    service = np.stack([a[1] for a in arrays])
    servers = np.stack([a[3] for a in arrays])
    types = arrays[0][2]

    t0 = time.perf_counter()
    scalar = [
        solve_symmetric(a[0], a[1], a[2], int(n), servers=a[3])
        for a, n in zip(arrays, pops)
    ]
    serial_s = time.perf_counter() - t0

    def batched():
        return solve_symmetric_batch(visits, service, types, pops, servers=servers)

    batch = run_once(benchmark, batched)
    batch_s = batch[0].telemetry.batch.wall_time_s
    speedup = serial_s / batch_s

    mismatches = sum(
        1
        for ref, got in zip(scalar, batch)
        if not (
            ref.throughput == got.throughput
            and np.array_equal(ref.queue_length, got.queue_length)
        )
    )
    assert mismatches == 0, f"{mismatches} bitwise mismatches on the lattice"
    assert speedup >= 5.0, (
        f"batched kernel only {speedup:.1f}x faster than the serial loop"
    )

    telemetry = batch[0].telemetry.batch
    manifest = {
        "lattice": {
            "points": len(points),
            "threads": list(THREADS),
            "p_remotes": list(P_REMOTES),
        },
        "serial_loop_s": serial_s,
        "batch_s": batch_s,
        "speedup": speedup,
        "bitwise_mismatches": mismatches,
        "batch_telemetry": telemetry.to_dict(),
        "masked_iterations_saved": telemetry.masked_iterations_saved,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "perf_batch_kernel.json"
    out.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    print(
        f"\nFigure-4 lattice ({len(points)} points): serial {serial_s * 1e3:.1f} ms, "
        f"batched {batch_s * 1e3:.1f} ms ({speedup:.1f}x), "
        f"{telemetry.iterations} iterations, "
        f"{telemetry.masked_iterations_saved} point-iterations masked"
        f"\n[saved to benchmarks/results/perf_batch_kernel.json]"
    )


def test_perf_kernel_axis(benchmark, lattice_arrays):
    """The compiled kernel against the reference on the same lattice.

    Always records the reference timing (and, when numba is importable,
    the compiled timing plus the bitwise cross-kernel check and the 5x
    gate) into the archived JSON manifest, then skips the gate cleanly
    on numba-free environments.
    """
    points, arrays = lattice_arrays
    pops = np.array([p.workload.num_threads for p in points])
    visits = np.stack([a[0] for a in arrays])
    service = np.stack([a[1] for a in arrays])
    servers = np.stack([a[3] for a in arrays])
    types = arrays[0][2]

    def solve(kernel):
        return solve_symmetric_batch(
            visits, service, types, pops, servers=servers, kernel=kernel
        )

    kernels = available_kernels()
    have_numba = "numba" in kernels

    ref = solve("numpy")
    numpy_s = ref[0].telemetry.batch.wall_time_s
    timings = {"numpy": {"batch_s": numpy_s}}
    speedup = None
    mismatches = 0

    if have_numba:
        solve("numba")  # warm the jit cache outside the measured round
        compiled = run_once(benchmark, lambda: solve("numba"))
        numba_s = compiled[0].telemetry.batch.wall_time_s
        speedup = numpy_s / numba_s
        timings["numba"] = {"batch_s": numba_s, "speedup_vs_numpy": speedup}
        mismatches = sum(
            1
            for a, b in zip(ref, compiled)
            if not (
                a.throughput == b.throughput
                and np.array_equal(a.queue_length, b.queue_length)
                and np.array_equal(a.waiting, b.waiting)
                and a.iterations == b.iterations
                and a.residual == b.residual
            )
        )
    else:
        run_once(benchmark, lambda: solve("numpy"))

    out = RESULTS_DIR / "perf_batch_kernel.json"
    manifest = json.loads(out.read_text()) if out.exists() else {}
    manifest["kernels"] = {
        "available": list(kernels),
        "points": len(points),
        "timings": timings,
        "bitwise_mismatches": mismatches,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")

    if not have_numba:
        pytest.skip(
            "numba not available: compiled-kernel speedup gate skipped "
            "(reference timing archived)"
        )
    assert mismatches == 0, f"{mismatches} cross-kernel bitwise mismatches"
    assert speedup >= 5.0, (
        f"compiled kernel only {speedup:.1f}x faster than the reference"
    )
    print(
        f"\nkernel axis ({len(points)} points): numpy {numpy_s * 1e3:.1f} ms, "
        f"numba {timings['numba']['batch_s'] * 1e3:.1f} ms ({speedup:.1f}x)"
        f"\n[saved to benchmarks/results/perf_batch_kernel.json]"
    )


def test_perf_solve_points_end_to_end(benchmark):
    """Model-level batched solve (stacking + kernel + measure derivation)."""
    points = _lattice()
    perfs, telemetry = run_once(benchmark, lambda: solve_points(points))
    assert len(perfs) == len(points)
    assert telemetry is not None and telemetry.converged == len(points)
