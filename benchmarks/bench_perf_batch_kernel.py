"""Batched AMVA kernel vs the serial per-point loop on the Figure-4 lattice.

The acceptance bar for the batched backend: on the paper's 176-point
Figure-4 lattice (11 thread counts x 16 remote fractions, 4x4 machine) the
stacked fixed point must reproduce the scalar results bitwise (symmetric
path) and beat the per-point loop by at least 5x.  The measured timings and
telemetry are archived as JSON under ``benchmarks/results/`` so the numbers
cited in docs come from a real run.
"""

import json
import time

import numpy as np
import pytest

from repro.core.model import MMSModel, solve_points
from repro.params import paper_defaults
from repro.queueing import solve_symmetric, solve_symmetric_batch

from conftest import RESULTS_DIR, run_once

THREADS = (1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20)
P_REMOTES = tuple(round(0.05 * i, 2) for i in range(1, 17))


def _lattice():
    return [
        paper_defaults(num_threads=n, p_remote=p)
        for n in THREADS
        for p in P_REMOTES
    ]


@pytest.fixture(scope="module")
def lattice_arrays():
    points = _lattice()
    arrays = [MMSModel(p).station_arrays() for p in points]
    return points, arrays


def test_perf_batch_kernel_vs_serial_loop(benchmark, lattice_arrays):
    """One measured round of each path, plus the 5x/bitwise assertions."""
    points, arrays = lattice_arrays
    pops = np.array([p.workload.num_threads for p in points])
    visits = np.stack([a[0] for a in arrays])
    service = np.stack([a[1] for a in arrays])
    servers = np.stack([a[3] for a in arrays])
    types = arrays[0][2]

    t0 = time.perf_counter()
    scalar = [
        solve_symmetric(a[0], a[1], a[2], int(n), servers=a[3])
        for a, n in zip(arrays, pops)
    ]
    serial_s = time.perf_counter() - t0

    def batched():
        return solve_symmetric_batch(visits, service, types, pops, servers=servers)

    batch = run_once(benchmark, batched)
    batch_s = batch[0].telemetry.batch.wall_time_s
    speedup = serial_s / batch_s

    mismatches = sum(
        1
        for ref, got in zip(scalar, batch)
        if not (
            ref.throughput == got.throughput
            and np.array_equal(ref.queue_length, got.queue_length)
        )
    )
    assert mismatches == 0, f"{mismatches} bitwise mismatches on the lattice"
    assert speedup >= 5.0, (
        f"batched kernel only {speedup:.1f}x faster than the serial loop"
    )

    telemetry = batch[0].telemetry.batch
    manifest = {
        "lattice": {
            "points": len(points),
            "threads": list(THREADS),
            "p_remotes": list(P_REMOTES),
        },
        "serial_loop_s": serial_s,
        "batch_s": batch_s,
        "speedup": speedup,
        "bitwise_mismatches": mismatches,
        "batch_telemetry": telemetry.to_dict(),
        "masked_iterations_saved": telemetry.masked_iterations_saved,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "perf_batch_kernel.json"
    out.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    print(
        f"\nFigure-4 lattice ({len(points)} points): serial {serial_s * 1e3:.1f} ms, "
        f"batched {batch_s * 1e3:.1f} ms ({speedup:.1f}x), "
        f"{telemetry.iterations} iterations, "
        f"{telemetry.masked_iterations_saved} point-iterations masked"
        f"\n[saved to benchmarks/results/perf_batch_kernel.json]"
    )


def test_perf_solve_points_end_to_end(benchmark):
    """Model-level batched solve (stacking + kernel + measure derivation)."""
    points = _lattice()
    perfs, telemetry = run_once(benchmark, lambda: solve_points(points))
    assert len(perfs) == len(points)
    assert telemetry is not None and telemetry.converged == len(points)
