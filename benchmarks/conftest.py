"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures, prints the
rows/series, and archives the rendered text under ``benchmarks/results/`` so
EXPERIMENTS.md can cite the exact output of the last run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def archive():
    """Save rendered experiment text to ``benchmarks/results/<name>.txt``
    and echo it to stdout (visible with ``pytest -s`` and in failure logs)."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n[saved to benchmarks/results/{name}.txt]")

    return _save


def run_once(benchmark, fn):
    """Benchmark ``fn`` with a single measured round.

    Experiment generators are deterministic and some take seconds; one round
    gives a faithful wall-clock figure without multiplying runtime.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
