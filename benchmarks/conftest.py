"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures, prints the
rows/series, and archives the rendered text under ``benchmarks/results/`` so
EXPERIMENTS.md can cite the exact output of the last run.

The whole benchmark session runs with a shared :mod:`repro.runner` result
cache under ``benchmarks/.sweep-cache`` (override with ``REPRO_CACHE_DIR``),
so every sweep-backed experiment reuses points solved by earlier benchmarks
-- and a *repeated* ``pytest benchmarks/`` run regenerates sweep-backed
figures almost entirely from cache.  Set ``REPRO_SWEEP_JOBS=N`` to also
solve cache misses on N worker processes.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

import repro
from repro import runner as mms_runner

RESULTS_DIR = Path(__file__).parent / "results"
SWEEP_CACHE_DIR = Path(__file__).parent / ".sweep-cache"


@pytest.fixture(scope="session", autouse=True)
def sweep_cache():
    """Route every sweep in the session through one persistent result store."""
    cache_dir = os.environ.get("REPRO_CACHE_DIR") or str(SWEEP_CACHE_DIR)
    previous = repro.configure(cache_dir=cache_dir)
    try:
        yield mms_runner.shared_store(cache_dir)
    finally:
        mms_runner.shared_store(cache_dir).flush()
        repro.configure(**previous)


@pytest.fixture
def sweep_runner():
    """A runner honouring the session cache and any REPRO_SWEEP_JOBS setting."""
    return mms_runner.default_runner()


@pytest.fixture
def archive():
    """Save rendered experiment text to ``benchmarks/results/<name>.txt``
    and echo it to stdout (visible with ``pytest -s`` and in failure logs)."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n[saved to benchmarks/results/{name}.txt]")

    return _save


def run_once(benchmark, fn):
    """Benchmark ``fn`` with a single measured round.

    Experiment generators are deterministic and some take seconds; one round
    gives a faithful wall-clock figure without multiplying runtime.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
