"""Headline claims: the paper's quotable numbers, side by side.

Covers the closed-form laws (Eqs. 4/5 with the values the text quotes), the
'most gains by 4-8 threads' rule of thumb, and the geometric-vs-uniform
scaling contrast of Section 7.
"""

import pytest

from conftest import run_once
from repro.analysis import headline_claims


def test_headline_claims(benchmark, archive):
    result = run_once(benchmark, headline_claims)
    archive("headline_claims", result.render())

    rows = {r[0]: r[2] for r in result.data["rows"]}

    assert rows["d_avg (4x4, p_sw=0.5)"] == pytest.approx(1.733, abs=0.001)
    assert rows["lambda_net,sat (Eq. 4)"] == pytest.approx(0.029, abs=0.0005)
    assert rows["critical p_remote, R=10"] == pytest.approx(0.18, abs=0.005)
    assert rows["critical p_remote, R=20"] == pytest.approx(0.37, abs=0.01)
    assert rows["IN-saturating p_remote, R=10"] == pytest.approx(0.3, abs=0.02)
    assert rows["IN-saturating p_remote, R=20"] == pytest.approx(0.6, abs=0.03)

    # 'most of the performance gains with 4 to 8 threads'
    assert rows["U_p(8)/U_p(20)"] > 0.85
    assert rows["U_p(4)/U_p(20)"] > 0.7

    # Section 7 contrast at P = 100
    assert rows["tol_net k=10 geometric"] > 0.9
    assert rows["tol_net k=10 uniform"] < 0.5
