"""Extension: finite network buffering (the paper's footnote 3).

"If the switches on the IN have limited buffering, then S_obs will saturate
with n_t."  Realized with deadlock-free end-to-end injection credits: the
in-network population is bounded, so the observed network latency flattens
in n_t while the unbounded system's keeps climbing.
"""

from conftest import run_once
from repro.analysis import ext_finite_buffers


def test_ext_finite_buffers(benchmark, archive):
    result = run_once(benchmark, ext_finite_buffers)
    archive("ext_finite_buffers", result.render())

    series = result.data["series"]
    capped2 = series["credits=2"]
    capped4 = series["credits=4"]
    free = series["unbounded"]

    # footnote 3's prediction: S_obs saturates under finite buffering
    assert capped2[-1] < 1.25 * capped2[1]  # flat from n_t=4 to n_t=16
    assert free[-1] > 2.5 * free[1]  # unbounded keeps climbing

    # the ceiling scales with the buffer budget
    assert capped2[-1] < capped4[-1] < free[-1]

    # at n_t=2 there can never be more than 2 outstanding remote messages,
    # so the credit limits do not bind and the trajectories coincide
    assert abs(capped4[0] - free[0]) < 1e-9
    assert abs(capped2[0] - free[0]) < 1e-9
