"""Figure 9: tolerance index vs n_t while scaling the machine (k = 2..10).

Paper shapes this bench checks:
* uniform: d_avg grows with the machine, tolerance collapses at scale;
* geometric: tolerance stays near its 4x4 level all the way to 100 PEs;
* the two patterns coincide exactly at k = 2;
* the thread count needed for tolerance (5-8) does not grow with P;
* R = 20 improves tolerance across the board.

DEVIATION (EXPERIMENTS.md): the paper's tol > 1 at k >= 6 cannot occur under
the exact product-form model; we assert tol <= 1 with the geometric pattern
close behind the ideal network.
"""

import numpy as np

from conftest import run_once
from repro.analysis import fig9_scaling_tolerance


def test_fig9_scaling_tolerance(benchmark, archive):
    result = run_once(benchmark, fig9_scaling_tolerance)
    archive("fig9_scaling_tolerance", result.render())

    threads = list(result.data["threads"])
    nt8 = threads.index(8)

    for r in (10, 20):
        # geometric holds up at scale; uniform decays with k
        geo = [result.data[f"R{r}_k{k}_geometric"][nt8] for k in (2, 4, 6, 8, 10)]
        uni = [result.data[f"R{r}_k{k}_uniform"][nt8] for k in (2, 4, 6, 8, 10)]
        assert geo[-1] > 0.9 if r == 10 else geo[-1] > 0.85
        assert uni[2] - uni[-1] > 0.1 or uni[-1] < 0.75  # decay at scale
        assert all(g >= u - 1e-9 for g, u in zip(geo, uni))

        # patterns coincide at k = 2 (all remote nodes equidistant)
        k2g = result.data[f"R{r}_k2_geometric"]
        k2u = result.data[f"R{r}_k2_uniform"]
        assert np.allclose(k2g, k2u, rtol=1e-6)

        # R = 20 beats R = 10 for the uniform pattern at k = 10
    u10 = result.data["R10_k10_uniform"][nt8]
    u20 = result.data["R20_k10_uniform"][nt8]
    assert u20 > u10

    # tolerance saturates by 5-8 threads at every machine size
    for k in (2, 4, 6, 8, 10):
        vals = result.data[f"R10_k{k}_geometric"]
        nt5 = threads.index(5)
        assert vals[nt5] > 0.9 * vals[-1]

    # product-form ceiling (documented deviation from the paper's 1.05)
    for key, vals in result.data.items():
        if isinstance(vals, np.ndarray):
            assert np.all(vals <= 1.0 + 1e-9)
