"""Figure 4: U_p, S_obs, lambda_net, tol_network over (n_t, p_remote), R=10.

Paper shapes this bench must reproduce:
* U_p ~ 100% at low p_remote, dropping past the critical value 0.18;
* S_obs rises with p_remote then flattens when the IN saturates (~0.3);
* lambda_net saturates near 0.029 (Eq. 4);
* tol_network = 0.8/0.5 planes separate the three operating zones.
"""

import numpy as np

from conftest import run_once
from repro.analysis import fig4_5_workload_surfaces
from repro.core import lambda_net_saturation
from repro.params import paper_defaults


def test_fig4_workload_surfaces_r10(benchmark, archive):
    result = run_once(benchmark, lambda: fig4_5_workload_surfaces(10.0))
    archive("fig4_workload_surfaces_r10", result.render())

    threads = result.data["threads"]
    p_rem = result.data["p_remotes"]
    u_p = result.data["U_p"]
    s_obs = result.data["S_obs"]
    lam = result.data["lambda_net"]
    tol = result.data["tol_network"]

    # U_p stays near its communication-free ceiling (n_t/(n_t+1) = 0.889
    # with R = L) below the critical p_remote
    nt8 = list(threads).index(8)
    low_p = list(p_rem).index(0.1)
    assert u_p[nt8, low_p] > 0.85

    # U_p monotonically non-increasing in p_remote at every thread count
    assert np.all(np.diff(u_p, axis=1) < 1e-9)

    # lambda_net saturates at Eq. (4)'s rate
    sat = lambda_net_saturation(paper_defaults())
    assert lam.max() <= sat * 1.0001
    assert lam.max() > 0.85 * sat

    # S_obs grows with n_t (contention), flattens in p_remote when saturated
    assert np.all(np.diff(s_obs, axis=0) > 0)
    hi_p = len(p_rem) - 1
    mid_p = list(p_rem).index(0.5)
    assert s_obs[nt8, hi_p] < 1.2 * s_obs[nt8, mid_p]

    # tolerance zones: tolerated at (8, 0.2), degraded at (8, 0.8)
    p02 = list(p_rem).index(0.2)
    assert tol[nt8, p02] > 0.8
    assert tol[nt8, hi_p] < 0.7
