"""Extension: hotspot access patterns (asymmetric workloads).

The paper notes its model applies to other access distributions "by changing
em_{i,j}"; this bench exercises that with a hot module, solved by the full
multi-class AMVA (the symmetric fast path provably does not apply), and
probes the multiported-memory fix -- discovering that after multiporting the
hot node's *inbound switch* becomes the binding bottleneck.
"""

from conftest import run_once
from repro.analysis import ext_hotspot


def test_ext_hotspot(benchmark, archive):
    result = run_once(benchmark, ext_hotspot)
    archive("ext_hotspot", result.render())

    perf = result.data["perf"]

    # hotspot severity monotonically degrades utilization
    u = [perf[f"f{f:g}"].processor_utilization for f in (0.0, 0.2, 0.4, 0.6)]
    assert u == sorted(u, reverse=True)
    assert u[0] - u[-1] > 0.3  # a severe hotspot more than halves U_p

    # the hot memory module saturates with severity
    assert perf["f0.6"].memory.utilization > 0.95
    assert perf["f0.2"].memory.utilization > perf["f0"].memory.utilization

    # per-class utilizations spread out (asymmetry is real)
    import numpy as np

    spread = float(np.ptp(perf["f0.2"].per_class_utilization))
    assert spread > 0.1

    # multiporting relieves the memory ...
    fixed = perf["f0.4_ports4"]
    assert fixed.memory.utilization < 0.5 * perf["f0.4"].memory.utilization
    # ... but barely moves U_p, because the hot node's inbound switch is
    # already saturated -- the deeper lesson of the experiment
    assert fixed.inbound.utilization > 0.95
    assert (
        abs(fixed.processor_utilization - perf["f0.4"].processor_utilization)
        < 0.05
    )
