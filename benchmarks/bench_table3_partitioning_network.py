"""Table 3: thread-partitioning strategy vs network latency tolerance.

Iso-work lines (n_t x R = 40): the paper reports (1) low p_remote gives
higher tol_network, (2) tol_network fairly constant along the line at fixed
p_remote -- with the R <= L rows 'surprisingly high' because memory then
degrades the ideal system too, and (3) absolute U_p peaking at a small
n_t > 1.
"""

from conftest import run_once
from repro.analysis import table3_partitioning_network
from repro.core import solve
from repro.params import paper_defaults


def test_table3_partitioning_network(benchmark, archive):
    result = run_once(
        benchmark, lambda: table3_partitioning_network(p_remotes=(0.2, 0.4))
    )
    archive("table3_partitioning_network", result.render())

    rows = result.data["rows"]
    by = {(r["p_remote"], r["n_t"]): r["tol"] for r in rows}

    # (1) low p_remote tolerates better, pointwise along the line
    for nt in (1, 2, 4, 8, 20):
        assert by[(0.2, nt)] > by[(0.4, nt)]

    # (2) tol_network varies little along the iso-work line at p=0.2
    vals = [by[(0.2, nt)] for nt in (1, 2, 4, 5, 8)]
    assert max(vals) - min(vals) < 0.2

    # (2b) the fine-grained (R < L) end is 'surprisingly high'
    assert by[(0.2, 40)] > by[(0.2, 1)]

    # (3) absolute performance peaks at few long threads
    u = {
        nt: solve(
            paper_defaults(num_threads=nt, runlength=40.0 / nt)
        ).processor_utilization
        for nt in (1, 2, 8, 40)
    }
    assert u[2] == max(u.values())
