"""Extension: EM-4-style local-priority memory scheduling (simulation).

The paper's Section 7 suggests prioritizing local memory requests for
machines with a very fast IN.  The measured picture is more nuanced and is
asserted here: the local latency always improves sharply; utilization
improves only for low-concurrency workloads (n_t = 1) and mildly regresses
once multithreading already hides the local latency.
"""

from conftest import run_once
from repro.analysis import ext_local_priority


def test_ext_local_priority(benchmark, archive):
    result = run_once(benchmark, ext_local_priority)
    archive("ext_local_priority", result.render())

    sims = result.data["sims"]

    # the local latency improves at every thread count
    for nt in (1, 2, 8):
        assert (
            sims[f"nt{nt}_prio"].l_obs_local < sims[f"nt{nt}_fcfs"].l_obs_local
        )
        # non-preemptive priority is work conserving: access rate preserved
        assert abs(
            sims[f"nt{nt}_prio"].access_rate - sims[f"nt{nt}_fcfs"].access_rate
        ) < 0.06 * sims[f"nt{nt}_fcfs"].access_rate

    # remote responses pay for it
    assert sims["nt8_prio"].l_obs_remote > sims["nt8_fcfs"].l_obs_remote

    # utilization: helps the single-threaded processor...
    assert (
        sims["nt1_prio"].processor_utilization
        > sims["nt1_fcfs"].processor_utilization
    )
    # ...and does NOT help the well-threaded one (the documented nuance)
    assert (
        sims["nt8_prio"].processor_utilization
        < sims["nt8_fcfs"].processor_utilization * 1.01
    )
