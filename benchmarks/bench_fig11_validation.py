"""Figure 11: the analytical model validated against simulation.

The paper simulates its stochastic timed Petri net at p_remote = 0.5 for
100,000 time units and reports the MVA model within 2% on lambda_net and 5%
on S_obs, with lambda_net saturating by n_t ~ 6 and S_obs growing linearly
in n_t.  This bench runs the discrete-event simulator over the same design
and checks those bands (slightly widened for the shorter horizon used here).
"""

from conftest import run_once
from repro.analysis import fig11_validation


def test_fig11_validation(benchmark, archive):
    rows, text = run_once(
        benchmark,
        lambda: fig11_validation(duration=40_000.0, seed=0),
    )
    archive("fig11_validation", text)

    lam_rows = [r for r in rows if r.measure == "lambda_net"]
    s_rows = [r for r in rows if r.measure == "S_obs"]

    # paper's accuracy bands (2% / 5%), with slack for the shorter horizon
    assert max(r.rel_error for r in lam_rows) < 0.05
    assert max(r.rel_error for r in s_rows) < 0.10

    # model predictions sit slightly below the simulation for lambda_net
    # ("model predictions are slightly lower than the simulations")
    low = sum(1 for r in lam_rows if r.model <= r.simulated * 1.01)
    assert low >= len(lam_rows) // 2

    # lambda_net near-saturates by n_t = 6 at S = 10 (paper: "initially
    # lambda_net increases with n_t and reaches close to saturation by
    # n_t = 6"); the tail growth 6 -> 10 is a small fraction of 1 -> 6 growth
    by_nt = {
        (r.params.arch.switch_delay, r.params.workload.num_threads): r.simulated
        for r in lam_rows
    }
    early_growth = by_nt[(10.0, 6)] - by_nt[(10.0, 1)]
    tail_growth = by_nt[(10.0, 10)] - by_nt[(10.0, 6)]
    assert by_nt[(10.0, 6)] > 0.85 * by_nt[(10.0, 10)]
    assert tail_growth < 0.25 * early_growth

    # S_obs grows ~linearly with n_t (simulated)
    s_by_nt = {
        (r.params.arch.switch_delay, r.params.workload.num_threads): r.simulated
        for r in s_rows
    }
    assert s_by_nt[(10.0, 8)] > 1.5 * s_by_nt[(10.0, 4)]
