"""Observability overhead on the paper's 176-point Figure-4 lattice.

The obs layer's contract is that *disabled* tracing is free: ``trace_span``
returns a shared no-op after one global read, and the always-on metrics
counters are a few dict operations per solve.  This bench pins that claim
on the real workload -- the 11 x 16 (threads x p_remote) lattice behind
Figures 4/5 -- two ways:

* **A/B wall clock**: the lattice solved with tracing disabled vs enabled
  (in-memory buffering tracer, the worst case that still records spans).
* **No-op microcost**: the per-call cost of a disabled ``trace_span``,
  multiplied by the number of span sites the lattice actually hits, as a
  fraction of the disabled lattice wall clock.  CI asserts this is < 2%.
* **Recorder sampling**: the lattice solved with a 10 Hz
  :class:`~repro.obs.timeseries.MetricsRecorder` running (wall-clock
  column, observational like the A/B), plus the asserted gate: the
  measured per-snapshot microcost times the 10 Hz cadence as a fraction
  of wall time.  The recorder is a pure registry reader on its own
  thread, so this pins the PR-8 claim that sampling adds < 1%.

Like the A/B column, the recorder wall clock is *reported*, not
asserted -- sub-second lattice solves jitter a few percent with OS
scheduling, which would drown a 1% bound.  The asserted fractions are
computed from microcosts, which are stable.
"""

import json
import time
import timeit

import pytest

from conftest import RESULTS_DIR, run_once
from repro import obs
from repro.core import MMSModel
from repro.obs.metrics import registry
from repro.obs.timeseries import MetricsRecorder
from repro.params import paper_defaults

THREADS = (1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20)
P_REMOTES = tuple(round(0.05 * i, 2) for i in range(1, 17))
#: acceptance bound on the disabled-path overhead fraction
NOOP_OVERHEAD_BOUND = 0.02
#: acceptance bound on 10 Hz recorder sampling during the solve
RECORDER_OVERHEAD_BOUND = 0.01
#: recorder cadence under test (10 Hz)
RECORDER_INTERVAL_S = 0.1


def lattice_points():
    return [
        paper_defaults(num_threads=nt, p_remote=pr)
        for nt in THREADS
        for pr in P_REMOTES
    ]


def solve_lattice(points):
    for params in points:
        MMSModel(params).solve()


def measure():
    points = lattice_points()
    assert len(points) == 176

    solve_lattice(points)  # warm-up: numpy/solver caches, allocator

    # A/B with interleaved repeats so clock drift hits both arms equally;
    # the enabled arm uses the in-memory buffering tracer (worst case that
    # still records every span)
    disabled_times: list[float] = []
    enabled_times: list[float] = []
    recorder_times: list[float] = []
    span_calls = 0
    recorder_samples = 0
    for _ in range(3):
        prev = obs.configure(trace=False)
        try:
            t0 = time.perf_counter()
            solve_lattice(points)
            disabled_times.append(time.perf_counter() - t0)
        finally:
            obs.configure(**prev)
        prev = obs.configure(trace=True)
        try:
            t0 = time.perf_counter()
            solve_lattice(points)
            enabled_times.append(time.perf_counter() - t0)
            span_calls = len(obs.get_tracer().buffer)
        finally:
            obs.configure(**prev)
        # tracing off again, but a 10 Hz recorder sampling the registry
        prev = obs.configure(trace=False)
        try:
            with MetricsRecorder(interval_s=RECORDER_INTERVAL_S) as rec:
                t0 = time.perf_counter()
                solve_lattice(points)
                recorder_times.append(time.perf_counter() - t0)
            recorder_samples = max(recorder_samples, rec.samples_taken)
        finally:
            obs.configure(**prev)
    wall_enabled = min(enabled_times)
    wall_disabled = min(disabled_times)
    wall_recorder = min(recorder_times)

    prev = obs.configure(trace=False)
    try:
        # microcost of one disabled trace_span entry/exit
        n = 100_000
        noop_s = min(
            timeit.repeat(
                "ts('bench.noop')",
                globals={"ts": obs.trace_span},
                number=n,
                repeat=5,
            )
        ) / n
    finally:
        obs.configure(**prev)

    # microcost of one registry snapshot (the only per-tick recorder work);
    # at a 1/interval cadence the steady-state overhead fraction of *any*
    # wall clock is snapshot_s / interval_s
    n = 1_000
    snapshot_s = min(
        timeit.repeat(
            "snap()",
            globals={"snap": registry().snapshot},
            number=n,
            repeat=5,
        )
    ) / n

    return {
        "lattice_points": len(points),
        "span_calls": span_calls,
        "wall_disabled_s": wall_disabled,
        "wall_enabled_s": wall_enabled,
        "enabled_overhead_frac": wall_enabled / wall_disabled - 1.0,
        "noop_ns_per_call": noop_s * 1e9,
        "noop_overhead_frac": noop_s * span_calls / wall_disabled,
        "bound": NOOP_OVERHEAD_BOUND,
        "wall_recorder_s": wall_recorder,
        "recorder_interval_s": RECORDER_INTERVAL_S,
        "recorder_samples": recorder_samples,
        "recorder_wall_frac": wall_recorder / wall_disabled - 1.0,
        "recorder_snapshot_ns": snapshot_s * 1e9,
        "recorder_overhead_frac": snapshot_s / RECORDER_INTERVAL_S,
        "recorder_bound": RECORDER_OVERHEAD_BOUND,
    }


def test_obs_overhead(benchmark, archive):
    stats = run_once(benchmark, measure)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "perf_obs_overhead.json").write_text(
        json.dumps(stats, indent=2, sort_keys=True) + "\n"
    )
    archive(
        "perf_obs_overhead",
        "Observability overhead, 176-point Figure-4 lattice\n"
        f"spans per lattice        {stats['span_calls']}\n"
        f"disabled wall clock      {stats['wall_disabled_s'] * 1e3:.1f} ms\n"
        f"enabled wall clock       {stats['wall_enabled_s'] * 1e3:.1f} ms "
        "(in-memory tracer)\n"
        f"no-op span call          {stats['noop_ns_per_call']:.0f} ns\n"
        f"no-op overhead fraction  {stats['noop_overhead_frac']:.5f} "
        f"(bound {NOOP_OVERHEAD_BOUND})\n"
        f"recorder wall clock      {stats['wall_recorder_s'] * 1e3:.1f} ms "
        f"(10 Hz, {stats['recorder_samples']} samples)\n"
        f"recorder snapshot        {stats['recorder_snapshot_ns']:.0f} ns\n"
        f"recorder overhead frac   {stats['recorder_overhead_frac']:.6f} "
        f"(bound {RECORDER_OVERHEAD_BOUND})",
    )

    assert stats["span_calls"] >= len(THREADS) * len(P_REMOTES)
    # the headline contract: tracing off costs < 2% of the lattice solve
    assert stats["noop_overhead_frac"] < NOOP_OVERHEAD_BOUND
    # PR-8 contract: 10 Hz registry sampling adds < 1% to the same solve
    assert stats["recorder_overhead_frac"] < RECORDER_OVERHEAD_BOUND
