"""Table 4: thread-partitioning strategy vs memory latency tolerance.

Paper shapes at p_remote = 0.2, n_t x R = 40: (1) raising L from 10 to 20
multiplies L_obs ~2.5x at fine grain and depresses tol_memory; (2) R >= L
rows keep tol_memory (and U_p) high because long threads lower the memory
access rate.
"""

from conftest import run_once
from repro.analysis import table4_partitioning_memory
from repro.core import MMSModel
from repro.params import paper_defaults


def test_table4_partitioning_memory(benchmark, archive):
    result = run_once(benchmark, table4_partitioning_memory)
    archive("table4_partitioning_memory", result.render())

    rows = result.data["rows"]
    by = {(r["L"], r["n_t"]): r["tol"] for r in rows}

    # (1) doubling L lowers tol_memory at every partitioning
    for nt in (1, 2, 4, 8, 20):
        assert by[(20.0, nt)] <= by[(10.0, nt)] + 1e-9

    # (1b) L_obs grows >2.3x at the fine-grained end
    fine = paper_defaults(num_threads=8, runlength=5.0)
    l10 = MMSModel(fine).solve().l_obs
    l20 = MMSModel(fine.with_(memory_latency=20.0)).solve().l_obs
    assert l20 / l10 > 2.3

    # (2) coarse partitions (R >= L) tolerate the memory latency best
    assert by[(10.0, 2)] > by[(10.0, 8)] > by[(10.0, 40)]
    assert by[(10.0, 2)] > 0.8
