"""Figure 10: system throughput P*U_p and latencies vs machine size.

Paper shapes:
(a) geometric throughput grows ~linearly with P and tracks the ideal-network
    line closely; uniform throughput flattens;
(b) under the ideal (zero-delay) network, contention moves to the memories:
    the ideal system's L_obs exceeds the geometric system's, while the
    uniform system's S_obs explodes with P.
"""

from conftest import run_once
from repro.analysis import fig10_throughput_scaling


def test_fig10_throughput_scaling(benchmark, archive):
    result = run_once(benchmark, fig10_throughput_scaling)
    archive("fig10_throughput_scaling", result.render())

    ps = list(result.data["P"])
    thr = result.data["throughput"]
    lat = result.data["latency"]

    # ordering: linear >= ideal >= geometric >= uniform, at every size
    for i in range(len(ps)):
        assert thr["linear"][i] >= thr["ideal_net"][i] - 1e-9
        assert thr["ideal_net"][i] >= thr["geometric"][i] - 1e-9
        assert thr["geometric"][i] >= thr["uniform"][i] - 1e-9

    # (a) geometric scales near-linearly: throughput ratio ~ P ratio
    i4, i100 = ps.index(4), ps.index(100)
    geo_gain = thr["geometric"][i100] / thr["geometric"][i4]
    assert geo_gain > 0.85 * (100 / 4)

    # (a) uniform is strongly sublinear
    uni_gain = thr["uniform"][i100] / thr["uniform"][i4]
    assert uni_gain < 0.6 * (100 / 4)

    # (a) geometric tracks the ideal network within ~10%
    assert thr["geometric"][i100] > 0.88 * thr["ideal_net"][i100]

    # (b) ideal network piles contention onto the memories
    assert lat["ideal(mem)"][i100] > lat["geo(mem)"][i100]

    # (b) uniform network latency explodes with P, geometric saturates
    assert lat["uni(net)"][i100] > 4 * lat["geo(net)"][i100]
    assert lat["geo(net)"][i100] < 1.5 * lat["geo(net)"][ps.index(16)]
