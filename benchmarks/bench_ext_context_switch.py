"""Extension: context-switch overhead C (carried by the paper, never swept).

C inflates the processor occupancy per dispatch without contributing useful
work: useful U_p falls, raw busy time rises, and -- subtly -- tol_network
*improves* because the slower access rate relieves the network (the same
mechanism as increasing R, Section 5).
"""

from conftest import run_once
from repro.analysis import ext_context_switch


def test_ext_context_switch(benchmark, archive):
    result = run_once(benchmark, ext_context_switch)
    archive("ext_context_switch", result.render())

    rows = result.data["rows"]
    by_c = {r[0]: r for r in rows}

    # useful utilization falls monotonically with C
    u = result.data["U_p"]
    assert list(u) == sorted(u, reverse=True)

    # busy time (useful + overhead) rises with C
    busy = [by_c[c][2] for c in (0.0, 2.0, 10.0)]
    assert busy == sorted(busy)

    # at C = R the processor spends half its busy time on overhead
    assert by_c[10.0][2] == pytest.approx(2 * by_c[10.0][1], rel=0.01)

    # slower access rate relieves the network: S_obs down, tolerance up
    assert by_c[10.0][3] < by_c[0.0][3]
    assert by_c[10.0][4] > by_c[0.0][4]


import pytest  # noqa: E402
