"""Section 8, by the book: STPN validation on the paper's own 4x4 machine.

The paper simulated a Stochastic Timed Petri Net of the 4x4 MMS at
p_remote = 0.5 and found the MVA model within 2% on lambda_net and 5% on
S_obs.  This bench repeats that exact exercise with our GSPN engine (the
DES-based Figure-11 bench covers the full n_t sweep; this one is the
formalism-faithful spot check).
"""

import json

import pytest

from conftest import RESULTS_DIR, run_once
from repro.analysis import format_table, validate_point
from repro.params import paper_defaults

POINTS = [
    paper_defaults(p_remote=0.5, num_threads=2),
    paper_defaults(p_remote=0.5, num_threads=4),
    paper_defaults(p_remote=0.5, num_threads=8),
]
DURATION = 20_000.0


def run_validation():
    out = []
    for params in POINTS:
        rows, stats = validate_point(
            params, duration=DURATION, seed=13, simulator="spn", with_stats=True
        )
        out.append((params, {r.measure: r for r in rows}, stats))
    return out


def test_spn_validation(benchmark, archive):
    results = run_once(benchmark, run_validation)

    table_rows = []
    for params, by, _stats in results:
        table_rows.append(
            [
                params.workload.num_threads,
                by["lambda_net"].model,
                by["lambda_net"].simulated,
                100 * by["lambda_net"].rel_error,
                by["S_obs"].model,
                by["S_obs"].simulated,
                100 * by["S_obs"].rel_error,
            ]
        )
    text = format_table(
        ["n_t", "lam(mva)", "lam(spn)", "err%", "S_obs(mva)", "S_obs(spn)",
         "err%"],
        table_rows,
        precision=4,
        title="Petri-net validation, 4x4 torus, p_remote = 0.5 "
        f"(T = {DURATION:g})",
    )
    archive("spn_validation", text)

    # execution telemetry: what each comparison cost, not just what it found
    manifest = {
        "duration": DURATION,
        "points": [
            {
                "num_threads": params.workload.num_threads,
                "wall_clock_s": stats["wall_clock_s"],
                "events": stats["events"],
                "events_per_s": (
                    stats["events"] / stats["wall_clock_s"]
                    if stats["wall_clock_s"] > 0
                    else 0.0
                ),
            }
            for params, _by, stats in results
        ],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "spn_validation.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )

    for params, by, _stats in results:
        nt = params.workload.num_threads
        # the paper's bands, with slack for the shorter horizon
        assert by["lambda_net"].rel_error < 0.05, nt
        assert by["S_obs"].rel_error < 0.08, nt
        assert by["U_p"].rel_error < 0.05, nt
        assert by["L_obs"].rel_error < 0.08, nt

    # every run actually processed events and took measurable time
    for point in manifest["points"]:
        assert point["events"] > 0
        assert point["wall_clock_s"] > 0

    # the sweep shape survives the formalism change: lambda_net saturating,
    # S_obs ~linear in n_t
    lam = [r[1]["lambda_net"].simulated for r in results]
    s = [r[1]["S_obs"].simulated for r in results]
    assert lam[0] < lam[1] < lam[2]
    assert (lam[2] - lam[1]) < (lam[1] - lam[0])  # saturating
    assert s[2] > 1.5 * s[1] > 2 * s[0] * 0.9  # roughly linear growth
