"""Figure 6: tol_network over the (n_t, R) plane at p_remote = 0.2 and 0.4.

Paper shapes: tolerance rises with both n_t and R (more exposed work); the
0.8/0.5 horizontal planes carve the tolerated / partial / not-tolerated
regions, and the p_remote = 0.4 sheet sits strictly below the 0.2 sheet.
"""

import numpy as np

from conftest import run_once
from repro.analysis import fig6_tolerance_surface


def test_fig6_tolerance_surface(benchmark, archive):
    result = run_once(benchmark, fig6_tolerance_surface)
    archive("fig6_tolerance_surface", result.render())

    t02 = result.data["tol_p0.2"]
    t04 = result.data["tol_p0.4"]
    threads = list(result.data["threads"])
    runlengths = list(result.data["runlengths"])

    # more remote traffic, less tolerance -- everywhere
    assert np.all(t04 <= t02 + 1e-9)

    # tolerance grows with thread count at fixed R >= 10
    for r in (10, 20, 40):
        col = threads and t02[:, runlengths.index(r)]
        assert np.all(np.diff(col) > -1e-9)

    # the top-right corner (many threads, long runlengths) is tolerated
    assert t02[-1, -1] > 0.9
    # at p=0.4 there are partially-tolerated cells (mid R), reproducing the
    # three-region split of the figure
    assert (t04 < 0.8).any()
    assert (t04 >= 0.8).any()
