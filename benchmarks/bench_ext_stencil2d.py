"""Extension: 2-D stencils under strong vs weak scaling.

The canonical workload the paper's intro motivates, analyzed end to end:
a 5-point stencil over a 2-D block-distributed array.  Remote traffic is
the tile's perimeter-to-area ratio, so:

* strong scaling (fixed problem): tiles shrink, p_remote grows, and the
  tolerance analysis pinpoints the machine size where the loop leaves the
  tolerated zone;
* weak scaling (fixed tile): p_remote converges to the interior-tile
  asymptote and tolerance holds at every size.
"""

from conftest import run_once
from repro.analysis import format_table
from repro.core import MMSModel
from repro.params import paper_defaults
from repro.workload import FIVE_POINT, Block2D, derive_stencil_pattern

PROBLEM = 128  # strong-scaling array side
TILE = 16  # weak-scaling tile side


def evaluate():
    rows = []
    data = {}
    for k in (2, 4, 8):
        for mode in ("strong", "weak"):
            side = PROBLEM if mode == "strong" else TILE * k
            lp = derive_stencil_pattern(Block2D(side, side, k, k), FIVE_POINT)
            params = paper_defaults(k=k, p_remote=lp.p_remote)
            perf = MMSModel(params, pattern=lp.pattern).solve()
            ideal = MMSModel(
                params.with_(switch_delay=0.0), pattern=lp.pattern
            ).solve()
            tol = perf.processor_utilization / ideal.processor_utilization
            rows.append(
                [
                    mode,
                    k * k,
                    side // k,
                    lp.p_remote,
                    perf.processor_utilization,
                    perf.system_throughput,
                    tol,
                ]
            )
            data[f"{mode}_k{k}"] = (lp.p_remote, perf, tol)
    return rows, data


def test_ext_stencil2d(benchmark, archive):
    rows, data = run_once(benchmark, evaluate)
    text = format_table(
        ["scaling", "P", "tile", "p_remote", "U_p", "P*U_p", "tol_net"],
        rows,
        precision=4,
        title=f"5-point stencil: strong (array {PROBLEM}^2) vs weak "
        f"(tile {TILE}^2/PE)",
    )
    archive("ext_stencil2d", text)

    # strong scaling erodes locality monotonically
    strong_p = [data[f"strong_k{k}"][0] for k in (2, 4, 8)]
    assert strong_p == sorted(strong_p)
    assert strong_p[-1] > 2 * strong_p[0]

    # weak scaling stays bounded by the interior asymptote
    asymptote = 4 * TILE / (5 * TILE * TILE)
    for k in (2, 4, 8):
        assert data[f"weak_k{k}"][0] < asymptote

    # both regimes remain tolerated for this friendly workload...
    for key, (_, _, tol) in data.items():
        assert tol > 0.8, key

    # ...but weak scaling delivers near-linear aggregate throughput
    weak_thr = [data[f"weak_k{k}"][1].system_throughput for k in (2, 4, 8)]
    assert weak_thr[2] / weak_thr[0] > 0.9 * (64 / 4)

    # and weak-scaled utilization dominates strong-scaled at the largest size
    assert (
        data["weak_k8"][1].processor_utilization
        >= data["strong_k8"][1].processor_utilization - 1e-9
    )
