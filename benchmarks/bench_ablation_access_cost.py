"""Ablation: baselines -- access cost and the contention-free model.

Two comparisons the paper motivates:

* Kurihara-style *memory access cost* is NOT a tolerance indicator (the
  paper's Section-1 conjecture): configurations with matching effective
  access cost can land in different tolerance zones.
* Agarwal's contention-free multithreading model over-predicts utilization
  exactly where the CQN model says queueing feedback matters.
"""

import pytest

from conftest import run_once
from repro.analysis import format_table
from repro.core import (
    MMSModel,
    agarwal_utilization,
    kurihara_access_cost,
    network_tolerance,
)
from repro.params import paper_defaults


def sweep():
    rows = []
    for nt, r, pr in [
        (4, 5.0, 0.1),
        (8, 10.0, 0.4),
        (2, 5.0, 0.1),
        (8, 10.0, 0.5),
        (8, 10.0, 0.2),
        (1, 10.0, 0.2),
    ]:
        params = paper_defaults(num_threads=nt, runlength=r, p_remote=pr)
        perf = MMSModel(params).solve()
        cost = kurihara_access_cost(params, performance=perf)
        tol = network_tolerance(params, actual=perf)
        ag = agarwal_utilization(params)
        rows.append(
            [
                nt,
                r,
                pr,
                cost.effective_cost,
                cost.hidden_fraction,
                tol.index,
                tol.zone.value,
                perf.processor_utilization,
                ag.utilization,
            ]
        )
    return rows


def test_ablation_access_cost(benchmark, archive):
    rows = run_once(benchmark, sweep)
    text = format_table(
        ["n_t", "R", "p_rem", "cost", "hidden", "tol_net", "zone", "U_p(CQN)",
         "U_p(Agarwal)"],
        rows,
        title="Ablation: access cost and the contention-free baseline",
    )
    archive("ablation_access_cost", text)

    by = {(r[0], r[1], r[2]): r for r in rows}

    # matched access cost, different tolerance zones (paper's conjecture)
    a = by[(4, 5.0, 0.1)]
    b = by[(8, 10.0, 0.4)]
    assert a[3] == pytest.approx(b[3], rel=0.1)  # same cost
    assert abs(a[5] - b[5]) > 0.2  # different tolerance

    # the contention-free model upper-bounds the CQN everywhere
    for row in rows:
        assert row[8] >= row[7] - 1e-9

    # and the gap widens with congestion (queueing feedback at p=0.5)
    gap_low = by[(8, 10.0, 0.2)][8] - by[(8, 10.0, 0.2)][7]
    gap_high = by[(8, 10.0, 0.5)][8] - by[(8, 10.0, 0.5)][7]
    assert gap_high > gap_low
