"""Ablation: MVA solver variants -- accuracy and cost.

DESIGN.md design-choices #2 and #3.  The symmetric fast path must match the
full multi-class Bard-Schweitzer bit-for-bit (same fixed point) while being
O(P) cheaper; Bard-Schweitzer's error against exact MVA is quantified on a
machine small enough to solve exactly.
"""

import time

import pytest

from conftest import run_once
from repro.analysis import format_table
from repro.core import MMSModel
from repro.params import paper_defaults


def timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def compare():
    rows = []
    # accuracy on the largest machine that exact MVA can still handle
    tiny = paper_defaults(k=2, num_threads=3, p_remote=0.4)
    model = MMSModel(tiny)
    ex, t_ex = timed(lambda: model.solve(method="exact"))
    bs, t_bs = timed(lambda: model.solve(method="amva"))
    lin, t_lin = timed(lambda: model.solve(method="linearizer"))
    sym, t_sym = timed(lambda: model.solve(method="symmetric"))
    for name, perf, t in [
        ("exact", ex, t_ex),
        ("linearizer", lin, t_lin),
        ("amva(BS)", bs, t_bs),
        ("symmetric", sym, t_sym),
    ]:
        err = abs(perf.processor_utilization - ex.processor_utilization)
        rows.append(["2x2/n_t=3", name, perf.processor_utilization, err, t * 1e3])

    # cost at scale: symmetric vs full AMVA on the 10x10 machine
    # (prime the shared visit-ratio cache so only solver cost is timed)
    big = paper_defaults(k=10)
    big_model = MMSModel(big)
    big_model.visit_ratios
    sym_big, t_sym_big = timed(lambda: big_model.solve(method="symmetric"))
    bs_big, t_bs_big = timed(lambda: big_model.solve(method="amva"))
    rows.append(
        ["10x10", "symmetric", sym_big.processor_utilization, 0.0, t_sym_big * 1e3]
    )
    rows.append(
        [
            "10x10",
            "amva(BS)",
            bs_big.processor_utilization,
            abs(bs_big.processor_utilization - sym_big.processor_utilization),
            t_bs_big * 1e3,
        ]
    )
    return rows


def test_ablation_solvers(benchmark, archive):
    rows = run_once(benchmark, compare)
    text = format_table(
        ["machine", "solver", "U_p", "|err| vs ref", "ms"],
        rows,
        precision=5,
        title="Ablation: MVA solver accuracy and cost",
    )
    archive("ablation_solvers", text)

    by = {(r[0], r[1]): r for r in rows}

    # BS error against exact is small (the paper's accepted approximation)
    assert by[("2x2/n_t=3", "amva(BS)")][3] < 0.05
    # linearizer refines BS
    assert (
        by[("2x2/n_t=3", "linearizer")][3]
        <= by[("2x2/n_t=3", "amva(BS)")][3] + 1e-9
    )
    # symmetric == full BS (same fixed point)
    assert by[("2x2/n_t=3", "symmetric")][2] == pytest.approx(
        by[("2x2/n_t=3", "amva(BS)")][2], rel=1e-6
    )
    assert by[("10x10", "amva(BS)")][3] < 1e-4

    # symmetric is at least 5x faster than the full solve at 10x10
    assert by[("10x10", "symmetric")][4] * 5 < by[("10x10", "amva(BS)")][4]
