"""Ablation: torus vs mesh -- settling the paper's Figure-1 ambiguity.

The paper's Figure-1 caption reads "2-dimensional mesh of size 4x4" while
the text describes wrap-around torus links.  The reconstructed parameters
(d_avg = 1.733 etc.) only check out for the torus, and this bench shows the
two interpretations are NOT interchangeable at scale: the mesh's growing
distances and edge asymmetry cut utilization well before the torus's.
"""

import pytest

from conftest import run_once
from repro.analysis import format_table
from repro.core import MMSModel, network_tolerance
from repro.params import paper_defaults
from repro.workload import GeometricPattern, UniformPattern


def compare():
    rows = []
    data = {}
    for k in (4, 8):
        for pattern in ("geometric", "uniform"):
            for wrap in (True, False):
                params = paper_defaults(k=k, pattern=pattern, wraparound=wrap)
                model = MMSModel(params)
                res = network_tolerance(params)
                perf = res.actual
                name = "torus" if wrap else "mesh"
                rows.append(
                    [
                        k,
                        pattern,
                        name,
                        model.d_avg,
                        perf.processor_utilization,
                        perf.s_obs,
                        res.index,
                    ]
                )
                data[f"k{k}_{pattern}_{name}"] = (model.d_avg, perf, res.index)
    return rows, data


def test_ablation_topology(benchmark, archive):
    rows, data = run_once(benchmark, compare)
    text = format_table(
        ["k", "pattern", "links", "d_avg", "U_p", "S_obs", "tol_net"],
        rows,
        title="Ablation: torus (text) vs mesh (Figure-1 caption)",
    )
    archive("ablation_topology", text)

    # the reconstructed paper constant d_avg = 1.733 holds ONLY on the torus
    d_torus = data["k4_geometric_torus"][0]
    d_mesh = data["k4_geometric_mesh"][0]
    assert d_torus == pytest.approx(1.733, abs=0.001)
    assert d_mesh > d_torus + 0.05

    # torus dominates mesh everywhere (distance + symmetry advantages)
    for k in (4, 8):
        for pattern in ("geometric", "uniform"):
            u_t = data[f"k{k}_{pattern}_torus"][1].processor_utilization
            u_m = data[f"k{k}_{pattern}_mesh"][1].processor_utilization
            assert u_t >= u_m - 1e-9

    # the gap explodes for uniform traffic at scale (mesh d_avg ~ 2k/3
    # vs torus ~ k/2)
    gap_4 = (
        data["k4_uniform_torus"][1].processor_utilization
        - data["k4_uniform_mesh"][1].processor_utilization
    )
    gap_8 = (
        data["k8_uniform_torus"][1].processor_utilization
        - data["k8_uniform_mesh"][1].processor_utilization
    )
    assert gap_8 > gap_4 > 0.05

    # under locality (geometric), the mesh stays serviceable -- the paper's
    # conclusions survive either reading, only the constants move
    assert data["k8_geometric_mesh"][2] > 0.85

    # sanity: patterns are the true paper definitions
    assert isinstance(GeometricPattern(0.5), GeometricPattern)
    assert isinstance(UniformPattern(), UniformPattern)
