"""Extension: validating the paper's switch-modeling assumption.

Section 2: pipelined networks are emulated "by changing the service rate of
the switches", a method that "works well, except to achieve the low latency
of pipelined networks in the presence of a light network traffic ... near
the network saturation, the performance of pipelined networks is similar to
that of non-pipelined networks [9]".

At equal switch bandwidth we simulate both: rate-scaled plain switches
(service S/d) vs true d-stage pipelines (latency S, initiation S/d).
"""

from conftest import run_once
from repro.analysis import ext_pipelined_switches


def test_ext_pipelined_switches(benchmark, archive):
    result = run_once(benchmark, ext_pipelined_switches)
    archive("ext_pipelined_switches", result.render())

    sims = result.data["sims"]

    # light traffic: the rate-scaled model understates the pipelined
    # network's latency badly (the weakness the paper concedes) ...
    assert sims["light_scaled"].s_obs < 0.5 * sims["light_pipelined"].s_obs
    # ... and overstates utilization noticeably
    assert (
        sims["light_scaled"].processor_utilization
        > 1.05 * sims["light_pipelined"].processor_utilization
    )

    # near saturation: performance (throughput, utilization) converges
    sat_a = sims["saturated_scaled"]
    sat_b = sims["saturated_pipelined"]
    assert abs(
        sat_a.processor_utilization - sat_b.processor_utilization
    ) < 0.08 * sat_b.processor_utilization
    assert abs(sat_a.lambda_net - sat_b.lambda_net) < 0.08 * sat_b.lambda_net
