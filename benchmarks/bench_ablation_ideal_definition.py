"""Ablation: the two ideal-system definitions for tol_network.

DESIGN.md design-choice #1.  The paper prefers the zero-delay subsystem
(S = 0) because it is invariant to machine scaling and data placement; the
measurable alternative sets p_remote = 0.  This bench quantifies where they
agree and where they diverge.
"""

import numpy as np

from conftest import run_once
from repro.analysis import format_table
from repro.core import network_tolerance
from repro.params import paper_defaults


def sweep():
    rows = []
    for k in (4, 8):
        for pr in (0.1, 0.2, 0.4, 0.6):
            params = paper_defaults(k=k, p_remote=pr)
            zd = network_tolerance(params, ideal="zero_delay")
            lo = network_tolerance(params, ideal="local_only", actual=zd.actual)
            rows.append(
                [
                    k,
                    pr,
                    zd.index,
                    lo.index,
                    zd.ideal.processor_utilization,
                    lo.ideal.processor_utilization,
                ]
            )
    return rows


def test_ablation_ideal_definition(benchmark, archive):
    rows = run_once(benchmark, sweep)
    text = format_table(
        ["k", "p_rem", "tol(S=0)", "tol(p=0)", "U_ideal(S=0)", "U_ideal(p=0)"],
        rows,
        title="Ablation: ideal-system definition for tol_network",
    )
    archive("ablation_ideal_definition", text)

    arr = np.array(rows)
    tol_zd, tol_lo = arr[:, 2], arr[:, 3]
    u_zd = arr[:, 4]

    # The zero-delay ideal's performance is scale-invariant: U_p,ideal at
    # k = 4 matches k = 8 for matching p_remote (the paper's motivation for
    # preferring it; tiny drift comes from the per-module queue split).
    for i in range(4):
        assert u_zd[i] == pytest.approx(u_zd[i + 4], rel=1e-3)

    # The local-only ideal is *stricter* (removes memory spreading too), so
    # its tolerance reads lower at high p_remote.
    assert np.all(tol_lo <= tol_zd + 0.02)

    # At low p_remote the two definitions agree within a few percent.
    low = [r for r in rows if r[1] == 0.1]
    for r in low:
        assert abs(r[2] - r[3]) < 0.06


import pytest  # noqa: E402  (used inside the test body)
