"""Fabric throughput scaling: points/sec at 1, 2, and 4 workers.

The satellite's acceptance bar (ISSUE 6): the distributed fabric path
must reach >= 1.7x points/sec at 2 workers over the *single-worker
fabric* path -- i.e. the coordination machinery (sqlite lease traffic,
heartbeats, shared-store appends, finalize recovery scan) must not eat
the parallelism it exists to buy.  Every run solves the same lattice
through ``FabricScheduler.run`` with a fixed per-point pacing delay
(``solve.delay`` fault site) so the workload is compute-shaped rather
than dominated by the microsecond-scale AMVA solve, and the records are
asserted bitwise-identical across worker counts.

Results are archived to ``benchmarks/results/perf_fabric_scaling.json``.
"""

import json
import os
import time

from repro.fabric import FabricScheduler
from repro.params import paper_defaults
from repro.runner import JobSpec, canonical_json

from conftest import RESULTS_DIR, run_once

#: worker fleet sizes measured (the acceptance bar compares 2 vs 1)
WORKER_COUNTS = (1, 2, 4)
#: per-point pacing injected via the ``solve.delay`` fault site
PACE_S = 0.035
#: lattice: 16 thread counts x 24 remote fractions = 384 points
N_THREADS = range(1, 17)
P_REMOTE = [round(0.05 + 0.7 * i / 23, 6) for i in range(24)]


def _specs() -> list[JobSpec]:
    return [
        JobSpec(params=paper_defaults(num_threads=nt, p_remote=pr))
        for nt in N_THREADS
        for pr in P_REMOTE
    ]


def _run_fabric(fabric_dir: str, workers: int) -> dict:
    """One full scheduler-managed run; returns timing + record lines."""
    specs = _specs()
    plan = {"sites": {"solve.delay": {"p": 1.0, "sleep_s": PACE_S}}}
    os.environ["REPRO_FAULT_PLAN"] = json.dumps(plan)  # inherited by workers
    try:
        with FabricScheduler(
            fabric_dir, lease_points=12, poll_s=0.05, backend="serial"
        ) as scheduler:
            t0 = time.perf_counter()
            report = scheduler.run(specs, workers=workers, timeout=600)
            wall = time.perf_counter() - t0
    finally:
        del os.environ["REPRO_FAULT_PLAN"]
    assert report.manifest.solved == len(specs)
    assert report.manifest.failures == 0
    return {
        "workers": workers,
        "points": len(specs),
        "wall_s": wall,
        "points_per_s": len(specs) / wall,
        "leases": report.manifest.fabric["leases_granted"],
        "lines": [canonical_json(rec) for rec in report.records()],
    }


def _measure_all(tmp_dir: str) -> dict:
    rows = [
        _run_fabric(os.path.join(tmp_dir, f"fab-{workers}w"), workers)
        for workers in WORKER_COUNTS
    ]
    # however the sweep was sharded, the records must not change
    for row in rows[1:]:
        assert row["lines"] == rows[0]["lines"]
    base = rows[0]["points_per_s"]
    return {
        "pace_s": PACE_S,
        "points": rows[0]["points"],
        "rows": [
            {k: v for k, v in row.items() if k != "lines"}
            | {"speedup": row["points_per_s"] / base}
            for row in rows
        ],
    }


def test_perf_fabric_scaling(benchmark, tmp_path):
    result = run_once(benchmark, lambda: _measure_all(str(tmp_path)))
    rows = result["rows"]

    lines = [f"fabric scaling ({result['points']} points, "
             f"{PACE_S * 1e3:.0f} ms/point pacing):"]
    for row in rows:
        lines.append(
            f"  workers={row['workers']}: {row['wall_s']:6.2f} s  "
            f"{row['points_per_s']:6.1f} points/s  "
            f"({row['speedup']:4.2f}x, {row['leases']} leases)"
        )
    print("\n" + "\n".join(lines))

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "perf_fabric_scaling.json"
    out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print("[saved to benchmarks/results/perf_fabric_scaling.json]")

    two = next(r for r in rows if r["workers"] == 2)
    assert two["speedup"] >= 1.7, (
        f"fabric at 2 workers only {two['speedup']:.2f}x over 1 worker "
        f"(bar: 1.7x)"
    )
