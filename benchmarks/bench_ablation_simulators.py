"""Ablation: the two simulation substrates describe the same system.

DES (token-tracking, fast) vs GSPN (the paper's formalism, anonymous tokens +
Little's law).  Agreement here means the Petri-net reduction -- resource
places, immediate routing, Little's-law latencies -- loses nothing.
"""

import json
import time

import pytest

from conftest import RESULTS_DIR, run_once
from repro.analysis import format_table
from repro.core import MMSModel
from repro.params import paper_defaults
from repro.simulation import simulate
from repro.spn import simulate_spn

POINT = paper_defaults(k=2, num_threads=4, p_remote=0.4)
DURATION = 30_000.0


def compare():
    perf = MMSModel(POINT).solve()
    t0 = time.perf_counter()
    des = simulate(POINT, duration=DURATION, seed=11)
    t_des = time.perf_counter() - t0
    t0 = time.perf_counter()
    spn = simulate_spn(POINT, duration=DURATION, seed=12)
    t_spn = time.perf_counter() - t0
    rows = []
    for key in ("U_p", "lambda_net", "S_obs", "L_obs"):
        rows.append(
            [key, perf.summary()[key], des.summary()[key], spn.summary()[key]]
        )
    rows.append(["seconds", 0.0, t_des, t_spn])
    stats = {
        "duration": DURATION,
        "des": {
            "wall_clock_s": t_des,
            "events": des.engine_stats["events_processed"],
            "max_event_queue": des.engine_stats["max_event_queue"],
            "stations": des.engine_stats["stations"],
        },
        "spn": {"wall_clock_s": t_spn, "events": spn.events},
    }
    return rows, stats


def test_ablation_simulators(benchmark, archive):
    rows, stats = run_once(benchmark, compare)
    text = format_table(
        ["measure", "MVA", "DES", "SPN"],
        rows,
        precision=4,
        title=f"Ablation: DES vs Petri net at {POINT.arch.torus}, T={DURATION:g}",
    )
    archive("ablation_simulators", text)

    # execution telemetry for both substrates: wall clock + events processed
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_simulators.json").write_text(
        json.dumps(stats, indent=2, sort_keys=True) + "\n"
    )
    assert stats["des"]["events"] > 0
    assert stats["spn"]["events"] > 0

    by = {r[0]: r for r in rows}
    for key, tol in [("U_p", 0.05), ("lambda_net", 0.06), ("S_obs", 0.12),
                     ("L_obs", 0.12)]:
        mva, des, spn = by[key][1], by[key][2], by[key][3]
        assert des == pytest.approx(mva, rel=tol)
        assert spn == pytest.approx(mva, rel=tol)
        assert spn == pytest.approx(des, rel=2 * tol)
