"""Performance micro-benchmarks for the solver and simulator kernels.

Unlike the experiment benches (single-round wrappers around figure
generators), these measure steady-state solver cost over many rounds -- the
numbers an adopter cares about when embedding the library in a sweep.
"""

import pytest

from repro.core import MMSModel
from repro.params import paper_defaults
from repro.queueing import bard_schweitzer, exact_mva_single_class, solve_symmetric
from repro.simulation import MMSSimulation
from repro.spn import SPNSimulator, build_mms_net


@pytest.fixture(scope="module")
def model_4x4():
    m = MMSModel(paper_defaults())
    m.visit_ratios  # prime the routing/visit cache
    return m


@pytest.fixture(scope="module")
def model_10x10():
    m = MMSModel(paper_defaults(k=10))
    m.visit_ratios
    return m


def test_perf_symmetric_solve_4x4(benchmark, model_4x4):
    perf = benchmark(lambda: model_4x4.solve(method="symmetric"))
    assert perf.converged


def test_perf_symmetric_solve_10x10(benchmark, model_10x10):
    perf = benchmark(lambda: model_10x10.solve(method="symmetric"))
    assert perf.converged


def test_perf_full_amva_4x4(benchmark, model_4x4):
    perf = benchmark(lambda: model_4x4.solve(method="amva"))
    assert perf.converged


def test_perf_raw_bard_schweitzer(benchmark, model_4x4):
    net = model_4x4.build_network()
    sol = benchmark(lambda: bard_schweitzer(net))
    assert sol.converged


def test_perf_raw_symmetric_kernel(benchmark, model_4x4):
    v, s, t, srv = model_4x4.station_arrays()
    sol = benchmark(lambda: solve_symmetric(v, s, t, 8, servers=srv))
    assert sol.converged


def test_perf_exact_mva_single_class(benchmark):
    import numpy as np

    from repro.queueing import ClosedNetwork

    net = ClosedNetwork(
        visits=np.ones((1, 64)),
        service=np.linspace(1.0, 4.0, 64),
        populations=np.array([32]),
    )
    sol = benchmark(lambda: exact_mva_single_class(net))
    assert sol.throughput[0] > 0


def test_perf_des_simulation(benchmark):
    """Events per wall-second of the discrete-event core (short horizon)."""

    def run():
        return MMSSimulation(paper_defaults(), seed=0).run(
            duration=2_000.0, warmup=200.0
        )

    res = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert res.cycles > 0


def test_perf_spn_simulation(benchmark):
    """Firing throughput of the Petri-net engine (2x2 machine)."""
    params = paper_defaults(k=2, num_threads=2)

    def run():
        sim = SPNSimulator(build_mms_net(params), seed=0)
        return sim.run(2_000.0, warmup=200.0)

    res = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert res.firing_counts.sum() > 0
