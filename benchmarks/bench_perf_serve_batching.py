"""Closed-loop serve throughput: coalescing service vs per-request scalar.

The tentpole's acceptance bar (ISSUE 5): with closed-loop clients (each
fires its next request the moment the last one answers) the coalescing
:class:`~repro.serve.SolveService` must beat a per-request scalar baseline
by >= 3x at client concurrency >= 16.  Both sides solve the *same* unique
points (caches disabled) from the same thread count, so the entire win is
batching economics: N blocked clients cost one batched fixed point instead
of N GIL-serialized scalar solves.

Measured at 4 concurrencies with batch-width and p50/p95/p99 latency
percentiles archived to ``benchmarks/results/perf_serve_batching.json``.
"""

import json
import threading
import time

from repro.core.model import MMSModel
from repro.params import paper_defaults
from repro.serve import ServiceConfig, SolveService

from conftest import RESULTS_DIR, run_once

#: closed-loop client concurrencies (the acceptance bar applies from 16 up)
CONCURRENCIES = (1, 4, 16, 32)
#: requests each client issues per measured run
REQUESTS_PER_CLIENT = 12


def _points(concurrency: int, per_client: int) -> list[list]:
    """Unique params per (client, request) -- no cache tier can answer."""
    return [
        [
            paper_defaults(p_remote=0.01 + 0.0001 * (c * per_client + i))
            for i in range(per_client)
        ]
        for c in range(concurrency)
    ]


def _closed_loop(concurrency: int, per_client: int, solve_one) -> dict:
    """Drive closed-loop clients; returns throughput + latency percentiles."""
    points = _points(concurrency, per_client)
    latencies: list[float] = []
    lock = threading.Lock()
    start = threading.Barrier(concurrency + 1)

    def client(c: int) -> None:
        start.wait()
        mine = []
        for params in points[c]:
            t0 = time.perf_counter()
            solve_one(params)
            mine.append(time.perf_counter() - t0)
        with lock:
            latencies.extend(mine)

    threads = [
        threading.Thread(target=client, args=(c,)) for c in range(concurrency)
    ]
    for t in threads:
        t.start()
    start.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0

    latencies.sort()

    def pct(q: float) -> float:
        rank = min(len(latencies) - 1, int(round(q * (len(latencies) - 1))))
        return latencies[rank]

    total = concurrency * per_client
    return {
        "concurrency": concurrency,
        "requests": total,
        "wall_s": wall,
        "rps": total / wall,
        "latency_s": {"p50": pct(0.50), "p95": pct(0.95), "p99": pct(0.99)},
    }


def _measure_all() -> dict:
    rows = []
    for concurrency in CONCURRENCIES:
        # --- baseline: every request is its own scalar solve ---------------
        baseline = _closed_loop(
            concurrency,
            REQUESTS_PER_CLIENT,
            lambda p: MMSModel(p).solve(method="symmetric"),
        )

        # --- service: same load, coalesced (caches off -> pure batching) ---
        config = ServiceConfig(
            max_batch=64,
            min_linger_s=0.0002,
            max_linger_s=0.004,
            adaptive=True,
            memory_cache=0,
        )
        with SolveService(config) as service:
            served = _closed_loop(
                concurrency,
                REQUESTS_PER_CLIENT,
                lambda p: service.solve(p, method="symmetric", timeout=120),
            )
            stats = service.stats()
        served["batch_width"] = stats["batch_width"]
        served["batches"] = stats["batches"]
        rows.append(
            {
                "concurrency": concurrency,
                "baseline": baseline,
                "service": served,
                "speedup": served["rps"] / baseline["rps"],
            }
        )
    return {"requests_per_client": REQUESTS_PER_CLIENT, "rows": rows}


def test_perf_serve_batching_vs_scalar_baseline(benchmark):
    result = run_once(benchmark, _measure_all)
    rows = result["rows"]

    lines = ["serve batching vs per-request scalar (closed loop):"]
    for row in rows:
        s, b = row["service"], row["baseline"]
        lines.append(
            f"  C={row['concurrency']:>2}: scalar {b['rps']:7.1f} rps | "
            f"service {s['rps']:7.1f} rps ({row['speedup']:4.1f}x) "
            f"width mean {s['batch_width']['mean']:.1f} max "
            f"{s['batch_width']['max']} | p50 {s['latency_s']['p50'] * 1e3:.1f} ms "
            f"p99 {s['latency_s']['p99'] * 1e3:.1f} ms"
        )
    print("\n" + "\n".join(lines))

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "perf_serve_batching.json"
    out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"[saved to benchmarks/results/perf_serve_batching.json]")

    for row in rows:
        if row["concurrency"] >= 16:
            assert row["speedup"] >= 3.0, (
                f"service only {row['speedup']:.1f}x over scalar at "
                f"concurrency {row['concurrency']} (bar: 3x)"
            )
            assert row["service"]["batch_width"]["max"] > 1
