"""Figure 7: tol_network along n_t x R = const lines, plotted against R.

Paper shapes: higher iso-work lines sit higher (more exposed computation);
along a line, tolerance converges for small R (memory-dominated regime where
the lines bunch together) and, for R >= L, reaches its maximum already at
n_t = 2 -- coalescing threads is essentially free.
"""

from conftest import run_once
from repro.analysis import fig7_iso_work_lines


def test_fig7_partitioning_lines(benchmark, archive):
    result = run_once(benchmark, fig7_iso_work_lines)
    archive("fig7_partitioning_lines", result.render())

    # higher work lines dominate lower ones at matching R where both exist
    for pr in (0.2, 0.4):
        pts_w40 = dict(result.data[f"p{pr}_w40"])
        pts_w160 = dict(result.data[f"p{pr}_w160"])
        shared = set(pts_w40) & set(pts_w160)
        assert shared, "iso-work lines must share R samples"
        for r in shared:
            assert pts_w160[r] >= pts_w40[r] - 1e-9

    # n_t = 2 on the W=160 line is already within a whisker of the line max
    pts = dict(result.data["p0.2_w160"])
    tol_nt2 = pts[80.0]  # R = W / n_t = 160/2
    assert tol_nt2 > 0.95 * max(pts.values())
