"""Extension: the tolerance metric as a tuning guide, quantified.

The paper's stated benefit: "the latency tolerance helps to selectively
analyze and optimize one or more subsystems at a time ... if the latency of
a memory subsystem is less tolerated than the network latency, a system
architect can tune the memory subsystem.  Tuning the parameters of other
subsystems will have less effect."

This bench verifies that promise end to end: at every operating point, the
subsystem with the LOWER tolerance index is the one whose parameter carries
the LARGER performance elasticity.
"""

from conftest import run_once
from repro.analysis import format_table, sensitivities
from repro.core import memory_tolerance, network_tolerance
from repro.params import paper_defaults

POINTS = {
    "memory-bound (defaults)": paper_defaults(),
    "balanced": paper_defaults(p_remote=0.3),
    "network-bound": paper_defaults(p_remote=0.6),
    "deep network saturation": paper_defaults(p_remote=0.8, num_threads=16),
    "fast memory": paper_defaults(memory_latency=2.0),
}


def evaluate():
    rows = []
    data = {}
    for name, params in POINTS.items():
        tol_n = network_tolerance(params).index
        tol_m = memory_tolerance(params).index
        rep = sensitivities(params)
        e_s = abs(rep["switch_delay"].elasticity)
        e_l = abs(rep["memory_latency"].elasticity)
        rows.append([name, tol_n, tol_m, e_s, e_l])
        data[name] = (tol_n, tol_m, e_s, e_l)
    return rows, data


def test_ext_sensitivity(benchmark, archive):
    rows, data = run_once(benchmark, evaluate)
    text = format_table(
        ["operating point", "tol_net", "tol_mem", "|E(S)|", "|E(L)|"],
        rows,
        title="low tolerance <=> high tuning leverage",
    )
    archive("ext_sensitivity", text)

    for name, (tol_n, tol_m, e_s, e_l) in data.items():
        # the paper's promise: the less-tolerated subsystem is the one
        # worth tuning (larger elasticity), at every point
        if tol_n < tol_m - 0.02:
            assert e_s > e_l, name
        elif tol_m < tol_n - 0.02:
            assert e_l > e_s, name

    # sanity on the specific regimes
    assert data["memory-bound (defaults)"][3] > data["memory-bound (defaults)"][2]
    assert data["network-bound"][2] > data["network-bound"][3]
