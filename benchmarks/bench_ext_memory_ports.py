"""Extension: multiported memory (the paper's Section-7 implication).

"A very fast IN may increase the contention at local memory, and the
performance suffers, if memory response time is not low.  Multiporting /
pipelining the memory can be of help."  This bench quantifies that: under a
zero-delay network the single-ported memory caps U_p; 2 ports recover most
of it and the gain is *larger* under the ideal network than under the real
one (where the network shares the blame).
"""

from conftest import run_once
from repro.analysis import ext_memory_ports


def test_ext_memory_ports(benchmark, archive):
    result = run_once(benchmark, ext_memory_ports)
    archive("ext_memory_ports", result.render())

    u = result.data["U_p"]

    # more ports, more utilization -- always
    for k in (4, 8):
        for s in ("10", "0"):
            assert u[f"k{k}_S{s}_m1"] < u[f"k{k}_S{s}_m2"] < u[f"k{k}_S{s}_m4"]

    # the multiporting gain is larger under the ideal network (the paper's
    # point: a fast IN shifts the bottleneck to the memory)
    gain_ideal = u["k8_S0_m2"] - u["k8_S0_m1"]
    gain_real = u["k8_S10_m2"] - u["k8_S10_m1"]
    assert gain_ideal > gain_real

    # with 2+ ports the ideal-network machine approaches full utilization
    assert u["k8_S0_m4"] > 0.95

    # diminishing returns: the 2->4 step is smaller than the 1->2 step
    assert (u["k4_S10_m4"] - u["k4_S10_m2"]) < (
        u["k4_S10_m2"] - u["k4_S10_m1"]
    )
