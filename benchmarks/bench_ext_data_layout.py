"""Extension: data-distribution choice as a tolerance query.

The paper's introduction motivates the metric with the compiler's decision:
"a suitable computation decomposition and data distribution".  This bench
compiles a 1-D stencil loop under BLOCK / CYCLIC / CYCLIC(B) distributions
into empirical access patterns, runs the tolerance analysis on each, and
asserts the decisions a compiler should reach.
"""

import pytest

from conftest import run_once
from repro.analysis import format_table
from repro.core import MMSModel
from repro.params import paper_defaults
from repro.workload import (
    BlockCyclicDistribution,
    BlockDistribution,
    CyclicDistribution,
    DoAllLoop,
    Reference,
    derive_pattern,
)

N, P = 1600, 16


def analyze_distributions():
    stencil = DoAllLoop(N, (Reference(1, 0), Reference(1, 1)))
    dists = {
        "BLOCK": BlockDistribution(N, P),
        "CYCLIC": CyclicDistribution(N, P),
        "CYCLIC(4)": BlockCyclicDistribution(N, P, 4),
        "CYCLIC(aligned)": BlockCyclicDistribution(N, P, N // P),
    }
    out = {}
    base = paper_defaults()
    for name, dist in dists.items():
        lp = derive_pattern(stencil, dist, P)
        params = base.with_(p_remote=lp.p_remote)
        model = MMSModel(params, pattern=lp.pattern)
        perf = model.solve()
        out[name] = (lp, perf)
    return out


def test_ext_data_layout(benchmark, archive):
    results = run_once(benchmark, analyze_distributions)

    rows = [
        [name, lp.p_remote, perf.processor_utilization, perf.s_obs]
        for name, (lp, perf) in results.items()
    ]
    text = format_table(
        ["distribution", "p_remote", "U_p", "S_obs"],
        rows,
        title=f"stencil A[i]+A[i+1], N={N}, 4x4 machine",
    )
    archive("ext_data_layout", text)

    block_lp, block_perf = results["BLOCK"]
    cyc_lp, cyc_perf = results["CYCLIC"]
    al_lp, al_perf = results["CYCLIC(aligned)"]

    # BLOCK: only block boundaries are remote
    assert block_lp.p_remote < 0.01
    assert block_perf.processor_utilization > 0.85

    # CYCLIC: essentially everything is remote, the network drowns
    assert cyc_lp.p_remote > 0.9
    assert cyc_perf.processor_utilization < 0.3

    # the compiler decision: BLOCK wins by >3x for this stencil
    assert block_perf.processor_utilization > 3 * cyc_perf.processor_utilization

    # alignment recovers BLOCK exactly (same ownership map)
    assert al_lp.p_remote == pytest.approx(block_lp.p_remote)
    assert al_perf.processor_utilization == pytest.approx(
        block_perf.processor_utilization, rel=1e-9
    )

    # misaligned small blocks do NOT interpolate (the subtle lesson)
    small_lp, _ = results["CYCLIC(4)"]
    assert small_lp.p_remote > 0.9
