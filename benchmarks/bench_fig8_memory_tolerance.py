"""Figure 8: tol_memory over the (n_t, R) plane for L = 10 and L = 20.

Paper shapes: tol_memory saturates at ~1 once R >= 2L and n_t >= 6; the
L = 20 sheet sits below the L = 10 sheet; short runlengths (R < L) leave the
memory latency only partially tolerated.
"""

import numpy as np

from conftest import run_once
from repro.analysis import fig8_memory_surface


def test_fig8_memory_tolerance(benchmark, archive):
    result = run_once(benchmark, fig8_memory_surface)
    archive("fig8_memory_tolerance", result.render())

    t10 = result.data["tol_L10"]
    t20 = result.data["tol_L20"]
    threads = list(result.data["threads"])
    runlengths = list(result.data["runlengths"])

    # slower memory => lower tolerance, everywhere
    assert np.all(t20 <= t10 + 1e-9)

    # saturation region: R >= 2L, n_t >= 6 (paper: 'tol_memory saturates
    # at ~1, i.e. L_obs does not affect processor performance')
    nt6 = threads.index(6)
    r20 = runlengths.index(20)
    assert t10[nt6:, r20:].min() > 0.93

    # short runlengths leave memory latency poorly tolerated at L = 20
    r2 = runlengths.index(2)
    assert t20[:, r2].max() < 0.8

    # tolerance increases with runlength at fixed n_t
    nt8 = threads.index(8)
    row = t10[nt8]
    assert row[-1] > row[0]
