"""Figure 5: the Figure-4 surfaces at R = 20.

Paper shapes: same qualitative behaviour as Figure 4 with knees shifted
right -- critical p_remote ~0.37, IN saturation near p_remote ~0.6, and a
higher tolerated region because the doubled runlength halves the access rate.
"""

import numpy as np

from conftest import run_once
from repro.analysis import fig4_5_workload_surfaces
from repro.core import lambda_net_saturation
from repro.params import paper_defaults


def test_fig5_workload_surfaces_r20(benchmark, archive):
    result = run_once(benchmark, lambda: fig4_5_workload_surfaces(20.0))
    archive("fig5_workload_surfaces_r20", result.render())

    threads = list(result.data["threads"])
    p_rem = list(result.data["p_remotes"])
    u_p = result.data["U_p"]
    lam = result.data["lambda_net"]
    tol = result.data["tol_network"]

    nt8 = threads.index(8)

    # the R=20 machine stays near-full utilization further into p_remote
    p03 = p_rem.index(0.3)
    assert u_p[nt8, p03] > 0.75

    # saturation rate itself is R-independent (Eq. 4)
    sat = lambda_net_saturation(paper_defaults(runlength=20.0))
    assert lam.max() <= sat * 1.0001

    # R=20 tolerates strictly more than R=10 point-for-point
    r10 = fig4_5_workload_surfaces(
        10.0,
        threads=tuple(threads),
        p_remotes=tuple(p_rem),
    )
    assert np.all(tol >= r10.data["tol_network"] - 1e-9)

    # paper: 'a higher value of R tolerates a p_remote value as high as 0.6'
    p06 = p_rem.index(0.6)
    assert tol[nt8, p06] > 0.5
