"""Table 2: the same observed network latency, different tolerance zones.

The paper's central argument against latency-centric reasoning: at R = 10,
n_t = 8 tolerates an S_obs of ~53 time units while n_t = 3 does not; at
R = 20, n_t = 6 tolerates ~56 while n_t = 3-4 only partially do.  Workload
characteristics -- not the latency value -- decide the operating zone.
"""

from conftest import run_once
from repro.analysis import table2_network_tolerance
from repro.core import TOLERATED_THRESHOLD


def test_table2_network_tolerance(benchmark, archive):
    result = run_once(benchmark, table2_network_tolerance)
    archive("table2_network_tolerance", result.render())

    rows = {(r["R"], r["n_t"]): r["tol"] for r in result.data["rows"]}

    # R = 10: n_t = 8 tolerates S_obs ~ 53; n_t = 3 does not
    assert rows[(10.0, 8)] >= TOLERATED_THRESHOLD
    assert rows[(10.0, 3)] < TOLERATED_THRESHOLD

    # R = 20: n_t = 8 (and 6) tolerate S_obs ~ 56; n_t = 3 sits lower
    assert rows[(20.0, 8)] >= TOLERATED_THRESHOLD
    assert rows[(20.0, 3)] < rows[(20.0, 6)]

    # tolerance rises monotonically with n_t at fixed target S_obs
    for r in (10.0, 20.0):
        tols = [rows[(r, nt)] for nt in (3, 4, 6, 8)]
        assert tols == sorted(tols)
