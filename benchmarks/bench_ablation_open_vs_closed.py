"""Ablation: open (ref-[9] style) vs closed network modeling.

The paper closes the loop -- responses gate injections -- where prior
network analyses (its ref [9]) drive each switch with a fixed open arrival
rate.  Measured here:

* at the *same* realized injection rate, the two agree on latency almost
  exactly (the per-switch M/M/1 view is sound);
* but the open model, fed the *offered* load ``p_remote/R``, diverges past
  Eq. (4)'s capacity, while the closed model self-limits ``lambda_net`` and
  keeps a finite (population-bounded) latency -- the modeling point that
  motivates the paper's CQN approach.
"""

import pytest

from conftest import run_once
from repro.analysis import format_table
from repro.core import open_network_latency, solve
from repro.params import paper_defaults


def compare():
    rows = []
    data = {}
    for pr in (0.05, 0.2, 0.3, 0.5):
        params = paper_defaults(p_remote=pr)
        perf = solve(params)
        matched = open_network_latency(params, perf.lambda_net)
        offered = open_network_latency(params, pr / 10.0)  # busy-processor load
        rows.append(
            [
                pr,
                perf.lambda_net,
                perf.s_obs,
                matched.s_obs,
                pr / 10.0,
                offered.s_obs,
            ]
        )
        data[pr] = (perf, matched, offered)
    return rows, data


def test_ablation_open_vs_closed(benchmark, archive):
    rows, data = run_once(benchmark, compare)
    text = format_table(
        [
            "p_rem",
            "lam(closed)",
            "S_obs(closed)",
            "S_obs(open@lam)",
            "lam(offered)",
            "S_obs(open@offered)",
        ],
        rows,
        precision=4,
        title="open vs closed network models",
    )
    archive("ablation_open_vs_closed", text)

    # at matched rates the open M/M/1 view tracks the closed MVA within ~10%
    for pr in (0.05, 0.2, 0.3):
        perf, matched, _ = data[pr]
        assert matched.s_obs == pytest.approx(perf.s_obs, rel=0.10)

    # fed the offered load, the open model diverges past Eq. (4)'s capacity
    _, _, offered_05 = data[0.5]
    assert offered_05.s_obs == float("inf")
    assert not offered_05.stable

    # while the closed system keeps operating at a finite latency
    perf_05 = data[0.5][0]
    assert perf_05.s_obs < 200.0
    assert perf_05.lambda_net < 0.029  # self-limited below Eq. (4)
