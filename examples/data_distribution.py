#!/usr/bin/env python3
"""Compiler case study 2: choosing a data distribution for a do-all loop.

The paper's introduction: "if network latency is not tolerated, then a
compiler can redistribute the data and computation to reduce the messages on
the network."  This example closes that loop mechanically:

    loop + data distribution  ->  (p_remote, access pattern)
                              ->  tolerance analysis  ->  decision

for a 1-D stencil ``forall i: B[i] = A[i] + A[i+1]`` on a 4x4 machine, under
BLOCK, CYCLIC and CYCLIC(B) distributions of ``A``.

Run:  python examples/data_distribution.py [array_size]
"""

import sys

from repro import paper_defaults
from repro.analysis import format_table
from repro.core import MMSModel, classify
from repro.workload import (
    BlockCyclicDistribution,
    BlockDistribution,
    CyclicDistribution,
    DoAllLoop,
    Reference,
    derive_pattern,
)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1600
    p = 16  # 4x4 machine
    stencil = DoAllLoop(n, (Reference(1, 0), Reference(1, 1)))

    distributions = {
        "BLOCK": BlockDistribution(n, p),
        "CYCLIC": CyclicDistribution(n, p),
        "CYCLIC(4)": BlockCyclicDistribution(n, p, 4),
        f"CYCLIC({n // p})": BlockCyclicDistribution(n, p, n // p),
    }

    rows = []
    base = paper_defaults()
    for name, dist in distributions.items():
        lp = derive_pattern(stencil, dist, p)
        if lp.is_local_only:
            perf = MMSModel(base.with_(p_remote=0.0)).solve()
            tol = 1.0
        else:
            params = base.with_(p_remote=lp.p_remote)
            model = MMSModel(params, pattern=lp.pattern)
            perf = model.solve()
            # zero-delay-network ideal, same empirical pattern
            ideal = MMSModel(
                params.with_(switch_delay=0.0), pattern=lp.pattern
            ).solve()
            tol = perf.processor_utilization / ideal.processor_utilization
        rows.append(
            [
                name,
                lp.p_remote,
                perf.processor_utilization,
                perf.s_obs,
                tol,
                classify(tol).value,
            ]
        )
    print(
        format_table(
            ["distribution", "p_remote", "U_p", "S_obs", "tol_net", "zone"],
            rows,
            title=f"stencil B[i] = A[i] + A[i+1], N = {n}, 4x4 machine "
            "(n_t=8, R=10)",
        )
    )
    print(
        "\nreading the table:\n"
        " * BLOCK keeps all but the block-boundary accesses local -- the\n"
        "   network is a non-issue and U_p sits at the memory-bound ceiling;\n"
        " * CYCLIC makes ~15/16 of accesses remote: the network saturates\n"
        "   and the latency is not tolerated;\n"
        " * small cyclic blocks do NOT interpolate: unless the block size\n"
        "   aligns with the iteration partition, data still lands on other\n"
        f"   PEs' modules.  CYCLIC({n // p}) aligns exactly and recovers\n"
        "   BLOCK's behaviour -- alignment, not block size, is what the\n"
        "   tolerance analysis rewards."
    )


if __name__ == "__main__":
    main()
