#!/usr/bin/env python3
"""Validation run: the analytical model against both simulators.

Reproduces the paper's Section-8 exercise end to end: solve the closed
queueing network with MVA, then simulate the same machine twice -- once with
the fast discrete-event simulator, once with the stochastic timed Petri net
(the paper's formalism) -- and compare the headline measures.

Run:  python examples/validate_model.py [duration]
"""

import sys
import time

from repro import paper_defaults, solve
from repro.analysis import format_table
from repro.simulation import simulate
from repro.spn import simulate_spn


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 30_000.0
    # Small machine so the Petri net stays cheap; p_remote = 0.5 as in the
    # paper's validation runs.
    params = paper_defaults(k=2, num_threads=4, p_remote=0.5)

    t0 = time.perf_counter()
    perf = solve(params)
    t_mva = time.perf_counter() - t0

    t0 = time.perf_counter()
    des = simulate(params, duration=duration, seed=1)
    t_des = time.perf_counter() - t0

    t0 = time.perf_counter()
    spn = simulate_spn(params, duration=duration, seed=2)
    t_spn = time.perf_counter() - t0

    rows = []
    for key in ("U_p", "lambda_net", "S_obs", "L_obs", "access_rate"):
        m, d, s = perf.summary()[key], des.summary()[key], spn.summary()[key]
        err_d = 100 * abs(d - m) / m if m else 0.0
        err_s = 100 * abs(s - m) / m if m else 0.0
        rows.append([key, m, d, err_d, s, err_s])
    print(
        format_table(
            ["measure", "MVA model", "DES", "err%", "Petri net", "err%"],
            rows,
            precision=4,
            title=f"validation at {params.arch.torus}, n_t=4, p_remote=0.5, "
            f"T={duration:g}",
        )
    )
    print(
        f"\nsolver time: MVA {t_mva * 1e3:.1f} ms | DES {t_des:.1f} s | "
        f"SPN {t_spn:.1f} s"
    )
    print(
        "\nThe paper reports the model within 2% of simulated lambda_net and\n"
        "5% of S_obs; the bands above should land in the same range (wider\n"
        "for short horizons -- pass a larger duration to tighten them)."
    )

    # Robustness check from the paper: deterministic memory service.
    det = simulate(
        params, duration=duration, seed=3, memory_dist="deterministic"
    )
    drift = 100 * abs(det.s_obs - des.s_obs) / des.s_obs
    print(
        f"\ndeterministic-memory S_obs: {det.s_obs:.1f} "
        f"(exponential: {des.s_obs:.1f}, drift {drift:.1f}% -- paper: <10%)"
    )


if __name__ == "__main__":
    main()
