#!/usr/bin/env python3
"""Compiler case study: how should a do-all loop be partitioned into threads?

The scenario from the paper's Section 5: a compiler has W = n_t x R units of
exposed computation per processor and must choose between many fine-grained
threads or a few coarse ones.  The latency-tolerance analysis makes the
trade-off explicit: more threads hide more latency but raise contention
(S_obs, L_obs); longer runlengths lower the access rate.

Run:  python examples/thread_partitioning.py [work_per_processor]
"""

import sys

from repro import network_tolerance, paper_defaults
from repro.analysis import format_table
from repro.core import memory_tolerance
from repro.workload import IsoWorkPartitioning, coalesce


def partitioning_table(work: float, p_remote: float) -> str:
    part = IsoWorkPartitioning(work)
    rows = []
    best = (None, -1.0)
    for n_t in (1, 2, 4, 5, 8, 10, 16, 20):
        if work / n_t < 0.5:
            continue
        wl = part.workload(n_t)
        params = paper_defaults(
            num_threads=wl.num_threads, runlength=wl.runlength, p_remote=p_remote
        )
        tn = network_tolerance(params)
        tm = memory_tolerance(params, actual=tn.actual)
        u_p = tn.actual.processor_utilization
        if u_p > best[1]:
            best = (n_t, u_p)
        rows.append(
            [
                n_t,
                wl.runlength,
                u_p,
                tn.actual.s_obs,
                tn.actual.l_obs,
                tn.index,
                tm.index,
                tn.zone.value,
            ]
        )
    table = format_table(
        ["n_t", "R", "U_p", "S_obs", "L_obs", "tol_net", "tol_mem", "network zone"],
        rows,
        title=f"\nwork = n_t x R = {work:g}, p_remote = {p_remote}",
    )
    return table + f"\n  -> best partitioning: n_t = {best[0]} (U_p = {best[1]:.3f})"


def main() -> None:
    work = float(sys.argv[1]) if len(sys.argv) > 1 else 40.0

    for p_remote in (0.2, 0.4):
        print(partitioning_table(work, p_remote))

    # The paper's recommendation, as a transformation: coalesce fine-grained
    # threads until the runlength clears the memory access time.
    print("\ncoalescing demo (p_remote = 0.2):")
    wl = paper_defaults().workload.with_(num_threads=16, runlength=work / 16)
    while wl.runlength < 10.0 and wl.num_threads > 2:
        wl = coalesce(wl, 2)
    params = paper_defaults(num_threads=wl.num_threads, runlength=wl.runlength)
    res = network_tolerance(params)
    print(
        f"  coalesced to n_t={wl.num_threads}, R={wl.runlength:g}: "
        f"U_p={res.actual.processor_utilization:.3f}, tol_net={res.index:.3f}"
    )


if __name__ == "__main__":
    main()
