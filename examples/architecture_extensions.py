#!/usr/bin/env python3
"""Beyond the paper: the architectural knobs Section 7 only gestures at.

Four what-if studies on top of the reproduced model and simulator:

1. multiported memory under a very fast interconnect (Section 7's
   "multiporting ... can be of help"),
2. EM-4-style local-request priority at the memory,
3. finite network buffering via injection credits (footnote 3),
4. a hotspot access pattern, solved with the full multi-class AMVA.

Run:  python examples/architecture_extensions.py
"""

from repro import paper_defaults
from repro.analysis import (
    ext_finite_buffers,
    ext_hotspot,
    ext_local_priority,
    ext_memory_ports,
)
from repro.core import MMSModel


def main() -> None:
    print(ext_memory_ports(ks=(4,)).render())
    print()
    print(ext_local_priority(duration=10_000.0).render())
    print()
    print(ext_finite_buffers(duration=8_000.0).render())
    print()
    print(ext_hotspot().render())

    # A closing vignette: the full diagnosis chain on a hotspot machine.
    print("\n--- diagnosing a hotspot machine ---")
    params = paper_defaults(
        pattern="hotspot", hot_fraction=0.4, p_remote=0.4
    )
    perf = MMSModel(params).solve()  # auto-selects the multi-class solver
    print(f"U_p                  {perf.processor_utilization:.3f}")
    print(f"hot memory util      {perf.memory.utilization:.3f}")
    print(f"hot inbound util     {perf.inbound.utilization:.3f}")
    fixed = MMSModel(params.with_(memory_ports=4)).solve()
    print(
        f"with 4-ported memory U_p {fixed.processor_utilization:.3f} "
        f"(memory util {fixed.memory.utilization:.3f}, "
        f"inbound util {fixed.inbound.utilization:.3f})"
    )
    print(
        "=> multiporting relieves the memory module, but the hot node's\n"
        "   inbound switch saturates next -- fix the traffic (locality),\n"
        "   not just the module."
    )


if __name__ == "__main__":
    main()
