#!/usr/bin/env python3
"""Quickstart: solve the paper's default machine and read the tolerance index.

Models a 4x4 torus multithreaded multiprocessor (the paper's Table 1
defaults), asks the two questions the tolerance metric answers --

* is the network latency a bottleneck here?
* is the memory latency a bottleneck here?

-- and shows how the closed-form bottleneck laws predict the knees.

Everything below goes through the ``repro`` facade -- the one stable
front door documented in docs/API.md.

Run:  python examples/quickstart.py
"""

import repro


def main() -> None:
    # The reconstructed Table-1 default point: 4x4 torus, 8 threads/PE,
    # runlength 10, 20% remote accesses with geometric locality p_sw = 0.5,
    # memory access time 10, switch delay 10.
    params = repro.paper_defaults()
    print("machine :", params.arch.torus, "| L =", params.arch.memory_latency,
          "| S =", params.arch.switch_delay)
    wl = params.workload
    print(f"workload: n_t={wl.num_threads} R={wl.runlength} "
          f"p_remote={wl.p_remote} pattern={wl.pattern}(p_sw={wl.p_sw})\n")

    # --- solve the closed queueing network (symmetric AMVA) ---------------
    perf = repro.solve(params)
    print(f"processor utilization U_p : {perf.processor_utilization:6.3f}")
    print(f"message rate lambda_net   : {perf.lambda_net:6.4f} msgs/cycle")
    print(f"observed network latency  : {perf.s_obs:6.1f} (one-way)")
    print(f"observed memory latency   : {perf.l_obs:6.1f}")
    print(f"system throughput P*U_p   : {perf.system_throughput:6.2f}\n")

    # --- the tolerance index ----------------------------------------------
    for subsystem in ("network", "memory"):
        res = repro.tolerance_index(params, subsystem=subsystem)
        print(f"tol_{subsystem:8s}: {res.index:5.3f}  -> {res.zone.value}")
    print()

    # --- closed-form bottleneck laws (Eqs. 4 and 5) ------------------------
    ba = repro.analyze(params)
    print(f"average remote distance d_avg        : {ba.d_avg:.3f}")
    print(f"network saturation rate (Eq. 4)      : {ba.lambda_net_saturation:.4f}")
    print(f"critical p_remote (Eq. 5)            : {ba.critical_p_remote:.3f}")
    print(f"p_remote where the IN saturates      : {ba.network_saturation_p_remote:.3f}")
    busy = "yes" if ba.processor_stays_busy else "no"
    print(f"processor stays busy at this point?  : {busy}")

    # The punchline of the paper: tolerance is governed by these *rates*,
    # not by the latency any individual message experiences.
    if params.workload.p_remote > ba.critical_p_remote:
        print("\n=> p_remote exceeds the critical value: expect the network")
        print("   latency to be only partially tolerated (compare tol_network).")


if __name__ == "__main__":
    main()
