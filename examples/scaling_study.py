#!/usr/bin/env python3
"""Architect case study: scaling the machine from 4 to 100 processors.

The scenario from the paper's Section 7: a system architect wants to know
whether the interconnect will hold up as the machine grows, and a compiler
writer wants to know how much data locality is worth.  We sweep the torus
from 2x2 to 10x10 under uniform and geometric (localized) remote-access
patterns and watch throughput, latencies and the tolerance index.

Run:  python examples/scaling_study.py
"""

from repro import network_tolerance, paper_defaults, solve
from repro.analysis import format_table
from repro.core import lambda_net_saturation
from repro.workload import make_pattern


def main() -> None:
    rows = []
    for k in (2, 4, 6, 8, 10):
        for pattern in ("geometric", "uniform"):
            params = paper_defaults(k=k, pattern=pattern)
            perf = solve(params)
            tol = network_tolerance(params, actual=perf)
            d_avg = make_pattern(
                pattern, params.workload.p_sw
            ).d_avg(params.arch.torus)
            rows.append(
                [
                    k * k,
                    pattern,
                    d_avg,
                    lambda_net_saturation(params),
                    perf.system_throughput,
                    perf.s_obs,
                    perf.l_obs,
                    tol.index,
                    tol.zone.value,
                ]
            )
    print(
        format_table(
            ["P", "pattern", "d_avg", "lam_sat", "P*U_p", "S_obs", "L_obs",
             "tol_net", "zone"],
            rows,
            title="scaling the MMS, n_t = 8, R = 10, p_remote = 0.2",
        )
    )

    print(
        "\nreading the table:\n"
        " * geometric: d_avg saturates toward 1/(1-p_sw) = 2, so the network\n"
        "   saturation rate stays put and throughput scales ~linearly.\n"
        " * uniform: d_avg grows with the diameter, the saturation rate\n"
        "   collapses, and past ~36 PEs the network is simply not tolerated.\n"
        " * the 5-8 threads/PE needed for tolerance do NOT grow with P --\n"
        "   locality, not parallel slack, is what scales."
    )

    # What does it cost to ignore locality at k = 10?
    geo = solve(paper_defaults(k=10))
    uni = solve(paper_defaults(k=10, pattern="uniform"))
    loss = 100 * (1 - uni.system_throughput / geo.system_throughput)
    print(f"\nthroughput lost to a uniform placement at P = 100: {loss:.0f}%")


if __name__ == "__main__":
    main()
