#!/usr/bin/env python
"""Validate a repro-trace/1 JSONL trace file and print its summary.

Usage::

    python scripts/validate_trace.py out.jsonl [--min-spans N] [--min-pids N]

Exits 0 when the trace conforms to the schema (meta header first, typed
span records, unique span ids, closed parent linkage, at least one span),
1 otherwise.  Parent linkage is checked across the whole file, so a
merged multi-process trace (``repro.fabric.rollup.merge_traces``)
validates cross-process parentage too -- every orphaned span is listed,
not just the first.  CI's trace smoke step runs this against the trace a
tiny sweep just wrote, and against the merged worker traces of a fabric
sweep with ``--min-pids 2``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.obs import TraceValidationError, validate_trace  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="JSONL trace file to validate")
    parser.add_argument(
        "--min-spans",
        type=int,
        default=1,
        help="fail unless the trace holds at least this many spans",
    )
    parser.add_argument(
        "--min-pids",
        type=int,
        default=1,
        help="fail unless spans came from at least this many processes "
        "(2+ proves a merged fabric trace really is cross-process)",
    )
    args = parser.parse_args(argv)

    try:
        summary = validate_trace(args.trace, require_closed_parents=False)
    except (TraceValidationError, OSError) as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    if summary.orphans:
        print(
            f"INVALID: {len(summary.orphans)} orphaned span(s):",
            file=sys.stderr,
        )
        for sid, parent in summary.orphans:
            print(f"  span {sid} -> missing parent {parent}", file=sys.stderr)
        return 1
    if summary.spans < args.min_spans:
        print(
            f"INVALID: {summary.spans} spans < required {args.min_spans}",
            file=sys.stderr,
        )
        return 1
    if len(summary.pids) < args.min_pids:
        print(
            f"INVALID: spans from {len(summary.pids)} process(es) < "
            f"required {args.min_pids}",
            file=sys.stderr,
        )
        return 1

    names = ", ".join(
        f"{name} x{count}" for name, count in sorted(summary.span_names.items())
    )
    print(
        f"OK: {summary.events} events, {summary.spans} spans "
        f"({summary.roots} roots, {len(summary.trace_ids)} trace ids, "
        f"{len(summary.pids)} pids, "
        f"{summary.metrics_records} metrics records)"
    )
    print(f"    {names}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
